#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/onoff.h"

namespace abr::core {
namespace {

/// A miniature configuration that runs in milliseconds of wall time.
ExperimentConfig TinyConfig() {
  ExperimentConfig config = ExperimentConfig::ToshibaSystem();
  config.rearrange_blocks = 200;
  config.profile.file_count = 60;
  config.profile.mean_file_blocks = 5.0;
  config.profile.max_file_blocks = 20;
  config.profile.day_length = 20 * kMinute;
  config.profile.arrivals.mean_burst_gap = 2 * kSecond;
  return config;
}

TEST(ExperimentTest, SetupPopulatesAndClearsStats) {
  Experiment exp(TinyConfig());
  ASSERT_TRUE(exp.Setup().ok());
  // Population traffic must not leak into the measured statistics.
  EXPECT_EQ(exp.driver().IoctlReadStats(false).all.count(), 0);
  EXPECT_TRUE(exp.system().HotList().empty());
  EXPECT_EQ(exp.day(), 0);
}

TEST(ExperimentTest, SetupTwiceFails) {
  Experiment exp(TinyConfig());
  ASSERT_TRUE(exp.Setup().ok());
  EXPECT_EQ(exp.Setup().code(), StatusCode::kFailedPrecondition);
}

TEST(ExperimentTest, RunBeforeSetupFails) {
  Experiment exp(TinyConfig());
  EXPECT_EQ(exp.RunMeasuredDay().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExperimentTest, MeasuredDayProducesMetricsAndCounts) {
  Experiment exp(TinyConfig());
  ASSERT_TRUE(exp.Setup().ok());
  auto day = exp.RunMeasuredDay();
  ASSERT_TRUE(day.ok());
  EXPECT_GT(day->all.count, 0);
  EXPECT_GT(day->all.mean_service_ms, 0.0);
  EXPECT_GT(exp.day_counts_all().total(), 0);
  EXPECT_GE(exp.day_counts_all().total(), exp.day_counts_reads().total());
  EXPECT_EQ(exp.day(), 1);
  // Counts feed the analyzer for the end-of-day decision.
  EXPECT_FALSE(exp.system().HotList().empty());
}

TEST(ExperimentTest, RearrangeThenCleanCycle) {
  Experiment exp(TinyConfig());
  ASSERT_TRUE(exp.Setup().ok());
  ASSERT_TRUE(exp.RunMeasuredDay().ok());
  ASSERT_TRUE(exp.RearrangeForNextDay().ok());
  EXPECT_GT(exp.driver().block_table().size(), 0);
  exp.AdvanceWorkloadDay();
  ASSERT_TRUE(exp.RunMeasuredDay().ok());
  ASSERT_TRUE(exp.CleanForNextDay().ok());
  EXPECT_EQ(exp.driver().block_table().size(), 0);
}

TEST(ExperimentTest, TighterBlockBudgetRespected) {
  Experiment exp(TinyConfig());
  ASSERT_TRUE(exp.Setup().ok());
  ASSERT_TRUE(exp.RunMeasuredDay().ok());
  exp.set_rearrange_blocks(15);
  ASSERT_TRUE(exp.RearrangeForNextDay().ok());
  EXPECT_LE(exp.driver().block_table().size(), 15);
}

TEST(OnOffProtocolTest, AlternatesAndImproves) {
  Experiment exp(TinyConfig());
  auto result = RunOnOff(exp, /*days_per_side=*/1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->off_days.size(), 1u);
  ASSERT_EQ(result->on_days.size(), 1u);
  // The rearranged day must show a clear seek-time advantage.
  EXPECT_LT(result->on_days[0].all.mean_seek_ms,
            result->off_days[0].all.mean_seek_ms);
}

TEST(OnOffProtocolTest, SummarizeSlices) {
  Experiment exp(TinyConfig());
  auto result = RunOnOff(exp, 1);
  ASSERT_TRUE(result.ok());
  const SummaryRow all =
      OnOffResult::Summarize(result->off_days, OnOffResult::Slice::kAll);
  const SummaryRow reads =
      OnOffResult::Summarize(result->off_days, OnOffResult::Slice::kReads);
  EXPECT_EQ(all.seek_ms.count(), 1);
  EXPECT_GT(all.service_ms.avg(), 0.0);
  EXPECT_GT(reads.service_ms.avg(), 0.0);
}

TEST(ExperimentConfigTest, PresetsMatchPaperParameters) {
  const ExperimentConfig ts = ExperimentConfig::ToshibaSystem();
  EXPECT_EQ(ts.reserved_cylinders, 48);
  EXPECT_EQ(ts.rearrange_blocks, 1018);
  const ExperimentConfig fs = ExperimentConfig::FujitsuSystem();
  EXPECT_EQ(fs.reserved_cylinders, 80);
  EXPECT_EQ(fs.rearrange_blocks, 3500);
  const ExperimentConfig fu = ExperimentConfig::FujitsuUsers();
  // The bigger disk holds twice the home directories.
  EXPECT_EQ(fu.profile.file_count,
            2 * ExperimentConfig::ToshibaUsers().profile.file_count);
}

TEST(ExperimentConfigTest, ToshibaReservedRegionYields1018Slots) {
  Experiment exp(ExperimentConfig::ToshibaSystem());
  ASSERT_TRUE(exp.Setup().ok());
  // 48 cylinders minus the 1018-entry table leaves exactly 1018 slots —
  // the number of blocks the paper rearranged.
  EXPECT_EQ(exp.driver().reserved_slot_count(), 1018);
}

}  // namespace
}  // namespace abr::core
