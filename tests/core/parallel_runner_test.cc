#include "core/parallel_runner.h"

#include <gtest/gtest.h>

#include <set>

namespace abr::core {
namespace {

/// A miniature configuration that runs in milliseconds of wall time.
ExperimentConfig TinyConfig() {
  ExperimentConfig config = ExperimentConfig::ToshibaSystem();
  config.rearrange_blocks = 200;
  config.profile.file_count = 60;
  config.profile.mean_file_blocks = 5.0;
  config.profile.max_file_blocks = 20;
  config.profile.day_length = 20 * kMinute;
  config.profile.arrivals.mean_burst_gap = 2 * kSecond;
  return config;
}

/// Warm-up day, rearrange, then one measured day.
StatusOr<std::vector<DayMetrics>> OneOnDay(std::size_t, Experiment& exp) {
  auto warmup = exp.RunMeasuredDay();
  if (!warmup.ok()) return warmup.status();
  ABR_RETURN_IF_ERROR(exp.RearrangeForNextDay());
  exp.AdvanceWorkloadDay();
  auto day = exp.RunMeasuredDay();
  if (!day.ok()) return day.status();
  return std::vector<DayMetrics>{*day};
}

/// A 4-config grid: two seeds x two placement policies.
std::vector<ExperimentConfig> FourConfigGrid() {
  GridSpec spec;
  spec.bases = {TinyConfig()};
  spec.policies = {placement::PolicyKind::kOrganPipe,
                   placement::PolicyKind::kInterleaved};
  spec.replicas = 2;
  spec.master_seed = 0xAB12;
  return BuildGrid(spec);
}

/// The complete observable surface of one grid run, bit-comparable.
std::vector<double> Fingerprint(
    const std::vector<std::vector<DayMetrics>>& results) {
  std::vector<double> fp;
  for (const auto& days : results) {
    for (const DayMetrics& d : days) {
      for (const SliceMetrics* s : {&d.all, &d.reads, &d.writes}) {
        fp.push_back(s->mean_seek_ms);
        fp.push_back(s->fcfs_seek_ms);
        fp.push_back(s->mean_seek_dist);
        fp.push_back(s->zero_seek_pct);
        fp.push_back(s->mean_service_ms);
        fp.push_back(s->mean_wait_ms);
        fp.push_back(s->rot_plus_transfer_ms);
        fp.push_back(static_cast<double>(s->count));
      }
    }
  }
  return fp;
}

TEST(ParallelRunnerTest, JobsDoNotChangeResults) {
  // The determinism guarantee: the merged metrics of a 4-config grid are
  // identical at jobs=1 (inline) and jobs=4 (pool), bit for bit.
  const std::vector<ExperimentConfig> grid = FourConfigGrid();
  ASSERT_EQ(grid.size(), 4u);

  auto serial = ParallelRunner(1).Run(grid, OneOnDay);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = ParallelRunner(4).Run(grid, OneOnDay);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial->size(), parallel->size());
  EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel));

  // And the deterministic merge over them is therefore identical too.
  const SummaryRow a = MergeSummary(*serial, OnOffResult::Slice::kAll);
  const SummaryRow b = MergeSummary(*parallel, OnOffResult::Slice::kAll);
  EXPECT_EQ(a.seek_ms.avg(), b.seek_ms.avg());
  EXPECT_EQ(a.service_ms.avg(), b.service_ms.avg());
  EXPECT_EQ(a.wait_ms.avg(), b.wait_ms.avg());
  EXPECT_EQ(a.seek_ms.count(), 4);
}

TEST(ParallelRunnerTest, MoreJobsThanConfigsWorks) {
  const std::vector<ExperimentConfig> grid = {TinyConfig()};
  auto result = ParallelRunner(8).Run(grid, OneOnDay);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_GT((*result)[0][0].all.count, 0);
}

TEST(ParallelRunnerTest, ErrorFromLowestConfigIndexWins) {
  const std::vector<ExperimentConfig> grid = FourConfigGrid();
  auto task = [](std::size_t index,
                 Experiment&) -> StatusOr<std::vector<DayMetrics>> {
    if (index >= 1) {
      return Status::IoError("config " + std::to_string(index) + " failed");
    }
    return std::vector<DayMetrics>{};
  };
  auto result = ParallelRunner(4).Run(grid, task);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "config 1 failed");
}

TEST(BuildGridTest, CrossProductOrderAndSeeds) {
  GridSpec spec;
  spec.bases = {TinyConfig(), TinyConfig()};
  spec.policies = {placement::PolicyKind::kOrganPipe,
                   placement::PolicyKind::kSerial};
  spec.replicas = 3;
  spec.master_seed = 99;
  const std::vector<ExperimentConfig> grid = BuildGrid(spec);
  ASSERT_EQ(grid.size(), 12u);  // 2 bases x 2 policies x 3 replicas
  // Bases outermost, then policies, then replicas.
  EXPECT_EQ(grid[0].system.policy, placement::PolicyKind::kOrganPipe);
  EXPECT_EQ(grid[3].system.policy, placement::PolicyKind::kSerial);
  EXPECT_EQ(grid[6].system.policy, placement::PolicyKind::kOrganPipe);
  // Every replica seed is distinct and a pure function of the master seed.
  std::set<std::uint64_t> seeds;
  for (const ExperimentConfig& c : grid) seeds.insert(c.seed);
  EXPECT_EQ(seeds.size(), 12u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].seed, DeriveReplicaSeed(99, i));
  }
}

TEST(BuildGridTest, EmptyPoliciesKeepBasePolicy) {
  GridSpec spec;
  ExperimentConfig base = TinyConfig();
  base.system.policy = placement::PolicyKind::kSerial;
  spec.bases = {base};
  spec.replicas = 2;
  const std::vector<ExperimentConfig> grid = BuildGrid(spec);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].system.policy, placement::PolicyKind::kSerial);
  EXPECT_EQ(grid[1].system.policy, placement::PolicyKind::kSerial);
}

TEST(DeriveReplicaSeedTest, DeterministicAndSpread) {
  EXPECT_EQ(DeriveReplicaSeed(1, 0), DeriveReplicaSeed(1, 0));
  EXPECT_NE(DeriveReplicaSeed(1, 0), DeriveReplicaSeed(1, 1));
  EXPECT_NE(DeriveReplicaSeed(1, 0), DeriveReplicaSeed(2, 0));
}

}  // namespace
}  // namespace abr::core
