#include "core/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace abr::core {
namespace {

/// A miniature configuration that runs in milliseconds of wall time.
ExperimentConfig TinyConfig() {
  ExperimentConfig config = ExperimentConfig::ToshibaSystem();
  config.rearrange_blocks = 200;
  config.profile.file_count = 60;
  config.profile.mean_file_blocks = 5.0;
  config.profile.max_file_blocks = 20;
  config.profile.day_length = 20 * kMinute;
  config.profile.arrivals.mean_burst_gap = 2 * kSecond;
  return config;
}

/// Warm-up day, rearrange, then one measured day.
StatusOr<std::vector<DayMetrics>> OneOnDay(std::size_t, Experiment& exp) {
  auto warmup = exp.RunMeasuredDay();
  if (!warmup.ok()) return warmup.status();
  ABR_RETURN_IF_ERROR(exp.RearrangeForNextDay());
  exp.AdvanceWorkloadDay();
  auto day = exp.RunMeasuredDay();
  if (!day.ok()) return day.status();
  return std::vector<DayMetrics>{*day};
}

/// A 4-config grid: two seeds x two placement policies.
std::vector<ExperimentConfig> FourConfigGrid() {
  GridSpec spec;
  spec.bases = {TinyConfig()};
  spec.policies = {placement::PolicyKind::kOrganPipe,
                   placement::PolicyKind::kInterleaved};
  spec.replicas = 2;
  spec.master_seed = 0xAB12;
  return BuildGrid(spec);
}

/// The complete observable surface of one grid run, bit-comparable.
std::vector<double> Fingerprint(
    const std::vector<std::vector<DayMetrics>>& results) {
  std::vector<double> fp;
  for (const auto& days : results) {
    for (const DayMetrics& d : days) {
      for (const SliceMetrics* s : {&d.all, &d.reads, &d.writes}) {
        fp.push_back(s->mean_seek_ms);
        fp.push_back(s->fcfs_seek_ms);
        fp.push_back(s->mean_seek_dist);
        fp.push_back(s->zero_seek_pct);
        fp.push_back(s->mean_service_ms);
        fp.push_back(s->mean_wait_ms);
        fp.push_back(s->rot_plus_transfer_ms);
        fp.push_back(static_cast<double>(s->count));
      }
    }
  }
  return fp;
}

TEST(ParallelRunnerTest, JobsDoNotChangeResults) {
  // The determinism guarantee: the merged metrics of a 4-config grid are
  // identical at jobs=1 (inline) and jobs=4 (pool), bit for bit.
  const std::vector<ExperimentConfig> grid = FourConfigGrid();
  ASSERT_EQ(grid.size(), 4u);

  auto serial = ParallelRunner(1).Run(grid, OneOnDay);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = ParallelRunner(4).Run(grid, OneOnDay);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial->size(), parallel->size());
  EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel));

  // And the deterministic merge over them is therefore identical too.
  const SummaryRow a = MergeSummary(*serial, OnOffResult::Slice::kAll);
  const SummaryRow b = MergeSummary(*parallel, OnOffResult::Slice::kAll);
  EXPECT_EQ(a.seek_ms.avg(), b.seek_ms.avg());
  EXPECT_EQ(a.service_ms.avg(), b.service_ms.avg());
  EXPECT_EQ(a.wait_ms.avg(), b.wait_ms.avg());
  EXPECT_EQ(a.seek_ms.count(), 4);
}

TEST(ParallelRunnerTest, MoreJobsThanConfigsWorks) {
  const std::vector<ExperimentConfig> grid = {TinyConfig()};
  auto result = ParallelRunner(8).Run(grid, OneOnDay);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_GT((*result)[0][0].all.count, 0);
}

TEST(ParallelRunnerTest, ErrorFromLowestConfigIndexWins) {
  const std::vector<ExperimentConfig> grid = FourConfigGrid();
  auto task = [](std::size_t index,
                 Experiment&) -> StatusOr<std::vector<DayMetrics>> {
    if (index >= 1) {
      return Status::IoError("config " + std::to_string(index) + " failed");
    }
    return std::vector<DayMetrics>{};
  };
  auto result = ParallelRunner(4).Run(grid, task);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "config 1 failed");
}

TEST(RunReplicatedTest, JobsDoNotChangeResults) {
  // Intra-experiment fan-out: R replications of a single config at jobs=1
  // and jobs=4 produce bit-identical results in replication order.
  const std::vector<ExperimentConfig> configs = {TinyConfig()};

  auto serial = ParallelRunner(1).RunReplicated(configs, 3, OneOnDay);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = ParallelRunner(4).RunReplicated(configs, 3, OneOnDay);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial->size(), 3u);  // one result slot per replication
  ASSERT_EQ(parallel->size(), 3u);
  EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel));

  // The replications are genuinely independent: distinct derived seeds
  // must produce distinct days, not three copies of one run.
  EXPECT_NE(Fingerprint({(*serial)[0]}), Fingerprint({(*serial)[1]}));
}

TEST(RunReplicatedTest, SingleReplicaMatchesPlainRun) {
  // replicas=1 keeps the config's own seed, so RunReplicated degenerates
  // to Run exactly — unreplicated callers see no behavior change.
  const std::vector<ExperimentConfig> configs = {TinyConfig()};
  auto replicated = ParallelRunner(1).RunReplicated(configs, 1, OneOnDay);
  ASSERT_TRUE(replicated.ok()) << replicated.status().ToString();
  auto plain = ParallelRunner(1).Run(configs, OneOnDay);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(Fingerprint(*replicated), Fingerprint(*plain));
}

TEST(RunReplicatedTest, ResultsAreConfigMajorReplicationMinor) {
  // Two configs x two replications: the task must see the *config* index
  // (0,0,1,1 over the flat expansion) and results land in that order.
  std::vector<ExperimentConfig> configs = {TinyConfig(), TinyConfig()};
  configs[1].seed = 0x5EED;
  std::vector<std::size_t> seen_indices(4, ~std::size_t{0});
  std::vector<std::uint64_t> seen_seeds(4, 0);
  std::atomic<std::size_t> slot{0};
  auto task = [&](std::size_t config_index,
                  Experiment& exp) -> StatusOr<std::vector<DayMetrics>> {
    const std::size_t at = slot.fetch_add(1);
    seen_indices[at] = config_index;
    seen_seeds[at] = exp.config().seed;
    return std::vector<DayMetrics>{};
  };
  auto result = ParallelRunner(1).RunReplicated(configs, 2, task);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 4u);
  EXPECT_EQ(seen_indices, (std::vector<std::size_t>{0, 0, 1, 1}));
  // Replica 0 keeps the config seed; replica 1 derives from it.
  EXPECT_EQ(seen_seeds[0], configs[0].seed);
  EXPECT_EQ(seen_seeds[1], ReplicaSeed(configs[0].seed, 1));
  EXPECT_EQ(seen_seeds[2], configs[1].seed);
  EXPECT_EQ(seen_seeds[3], ReplicaSeed(configs[1].seed, 1));
}

TEST(RunReplicatedTest, RejectsNonPositiveReplicas) {
  auto result = ParallelRunner(1).RunReplicated({TinyConfig()}, 0, OneOnDay);
  EXPECT_FALSE(result.ok());
}

TEST(BuildGridTest, CrossProductOrderAndSeeds) {
  GridSpec spec;
  spec.bases = {TinyConfig(), TinyConfig()};
  spec.policies = {placement::PolicyKind::kOrganPipe,
                   placement::PolicyKind::kSerial};
  spec.replicas = 3;
  spec.master_seed = 99;
  const std::vector<ExperimentConfig> grid = BuildGrid(spec);
  ASSERT_EQ(grid.size(), 12u);  // 2 bases x 2 policies x 3 replicas
  // Bases outermost, then policies, then replicas.
  EXPECT_EQ(grid[0].system.policy, placement::PolicyKind::kOrganPipe);
  EXPECT_EQ(grid[3].system.policy, placement::PolicyKind::kSerial);
  EXPECT_EQ(grid[6].system.policy, placement::PolicyKind::kOrganPipe);
  // Every replica seed is distinct and a pure function of the master seed.
  std::set<std::uint64_t> seeds;
  for (const ExperimentConfig& c : grid) seeds.insert(c.seed);
  EXPECT_EQ(seeds.size(), 12u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].seed, DeriveReplicaSeed(99, i));
  }
}

TEST(BuildGridTest, EmptyPoliciesKeepBasePolicy) {
  GridSpec spec;
  ExperimentConfig base = TinyConfig();
  base.system.policy = placement::PolicyKind::kSerial;
  spec.bases = {base};
  spec.replicas = 2;
  const std::vector<ExperimentConfig> grid = BuildGrid(spec);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].system.policy, placement::PolicyKind::kSerial);
  EXPECT_EQ(grid[1].system.policy, placement::PolicyKind::kSerial);
}

TEST(DeriveReplicaSeedTest, DeterministicAndSpread) {
  EXPECT_EQ(DeriveReplicaSeed(1, 0), DeriveReplicaSeed(1, 0));
  EXPECT_NE(DeriveReplicaSeed(1, 0), DeriveReplicaSeed(1, 1));
  EXPECT_NE(DeriveReplicaSeed(1, 0), DeriveReplicaSeed(2, 0));
}

}  // namespace
}  // namespace abr::core
