#include "core/adaptive_system.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/metrics.h"
#include "disk/drive_spec.h"
#include "workload/replay.h"
#include "workload/synthetic.h"

namespace abr::core {
namespace {

class AdaptiveSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    drive_ = disk::DriveSpec::TestDrive(200, 4, 32);
    disk_ = std::make_unique<disk::Disk>(drive_);
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    AdaptiveSystemConfig config;
    config.driver.block_table_capacity = 64;
    config.rearrange_blocks = 64;
    config.analyzer_entries = 0;  // exact
    system_ = std::make_unique<AdaptiveSystem>(disk_.get(), std::move(*label),
                                               config, &store_);
    ASSERT_TRUE(system_->Start().ok());
  }

  /// One "day" of synthetic skewed traffic; returns its metrics.
  DayMetrics RunPeriod(std::uint64_t seed) {
    workload::SyntheticConfig config;
    config.population = 300;
    config.theta = 1.2;
    config.write_fraction = 0.2;
    config.arrivals.mean_burst_gap = 200 * kMillisecond;
    config.arrivals.mean_burst_size = 4.0;
    // Same seed -> same block population & request sequence shape, so the
    // previous period's hot list predicts the next period well.
    workload::SyntheticBlockWorkload w(
        0,
        disk_->geometry().total_sectors() / 16 - 10 * 8 /* virtual blocks */,
        config, seed);
    workload::Trace trace;
    w.Generate(system_->driver().now(),
               system_->driver().now() + 60 * kSecond, trace);
    system_->driver().IoctlReadStats(/*clear=*/true);
    EXPECT_TRUE(workload::Replay(system_->driver(), trace,
                                 [this](Micros t) {
                                   system_->PeriodicTick(t);
                                 },
                                 10 * kSecond)
                    .ok());
    system_->driver().Drain();
    return DayMetrics::From(system_->driver().IoctlReadStats(true),
                            drive_.seek_model);
  }

  disk::DriveSpec drive_ = disk::DriveSpec::TestDrive();
  std::unique_ptr<disk::Disk> disk_;
  driver::InMemoryTableStore store_;
  std::unique_ptr<AdaptiveSystem> system_;
};

TEST_F(AdaptiveSystemTest, HotListComesFromMonitoredTraffic) {
  RunPeriod(1);
  auto hot = system_->HotList();
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), 64u);
  // Hottest first.
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].count, hot[i].count);
  }
}

TEST_F(AdaptiveSystemTest, RearrangeReducesSeekTime) {
  const DayMetrics before = RunPeriod(1);
  auto result = system_->Rearrange();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copied, 64);
  const DayMetrics after = RunPeriod(1);
  // Same workload, hot blocks now clustered: seek time must drop sharply.
  EXPECT_LT(after.all.mean_seek_ms, 0.6 * before.all.mean_seek_ms);
  EXPECT_GT(after.all.zero_seek_pct, before.all.zero_seek_pct);
}

TEST_F(AdaptiveSystemTest, CleanRestoresOriginalBehaviour) {
  const DayMetrics before = RunPeriod(1);
  ASSERT_TRUE(system_->Rearrange().ok());
  RunPeriod(1);
  ASSERT_TRUE(system_->Clean().ok());
  EXPECT_EQ(system_->driver().block_table().size(), 0);
  const DayMetrics restored = RunPeriod(1);
  // Within a reasonable band of the original (seed-identical traffic).
  EXPECT_NEAR(restored.all.mean_seek_ms, before.all.mean_seek_ms,
              0.25 * before.all.mean_seek_ms);
}

TEST_F(AdaptiveSystemTest, RearrangeResetsCounts) {
  RunPeriod(1);
  ASSERT_TRUE(system_->Rearrange().ok());
  EXPECT_TRUE(system_->HotList().empty());
}

TEST_F(AdaptiveSystemTest, SetRearrangeBlocksLimitsCopies) {
  RunPeriod(1);
  system_->set_rearrange_blocks(10);
  auto result = system_->Rearrange();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copied, 10);
}

TEST_F(AdaptiveSystemTest, SurvivesRestart) {
  RunPeriod(1);
  ASSERT_TRUE(system_->Rearrange().ok());
  const std::int32_t moved = system_->driver().block_table().size();
  ASSERT_GT(moved, 0);

  // Clean shutdown + new system on the same disk and table store.
  auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
  ASSERT_TRUE(label.ok());
  ASSERT_TRUE(label->PartitionEvenly(1).ok());
  AdaptiveSystemConfig config;
  config.driver.block_table_capacity = 64;
  config.rearrange_blocks = 64;
  AdaptiveSystem revived(disk_.get(), std::move(*label), config, &store_);
  ASSERT_TRUE(revived.Start().ok());
  EXPECT_EQ(revived.driver().block_table().size(), moved);
}

}  // namespace
}  // namespace abr::core
