#include "core/metrics.h"

#include <gtest/gtest.h>

namespace abr::core {
namespace {

driver::PerfSnapshot MakeSnapshot() {
  driver::PerfMonitor m;
  m.RecordArrival(sched::IoType::kRead, 0);
  m.RecordArrival(sched::IoType::kRead, 100);
  m.RecordCompletion(sched::IoType::kRead, 2000, 20000, 0, 8000, 2000,
                     false);
  m.RecordCompletion(sched::IoType::kRead, 4000, 30000, 50, 8000, 2000,
                     false);
  m.RecordCompletion(sched::IoType::kWrite, 6000, 10000, 0, 4000, 1000,
                     true);
  return m.Snapshot();
}

TEST(SliceMetricsTest, ExtractsAllFields) {
  const disk::SeekModel model = disk::SeekModel::Linear(2.0, 0.1, 200);
  const SliceMetrics m = SliceMetrics::From(MakeSnapshot().reads, model);
  EXPECT_EQ(m.count, 2);
  EXPECT_DOUBLE_EQ(m.mean_service_ms, 25.0);
  EXPECT_DOUBLE_EQ(m.mean_wait_ms, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_seek_dist, 25.0);
  EXPECT_DOUBLE_EQ(m.fcfs_seek_dist, 100.0);
  EXPECT_DOUBLE_EQ(m.zero_seek_pct, 50.0);
  // Seek times derive from the distance distributions and the model:
  // distances {0, 50} -> {0, 7} ms -> mean 3.5; FCFS {100} -> 12.
  EXPECT_DOUBLE_EQ(m.mean_seek_ms, 3.5);
  EXPECT_DOUBLE_EQ(m.fcfs_seek_ms, 12.0);
  EXPECT_DOUBLE_EQ(m.rot_plus_transfer_ms, 10.0);
}

TEST(DayMetricsTest, SlicesAreConsistent) {
  const disk::SeekModel model = disk::SeekModel::Linear(2.0, 0.1, 200);
  const DayMetrics d = DayMetrics::From(MakeSnapshot(), model);
  EXPECT_EQ(d.all.count, d.reads.count + d.writes.count);
  EXPECT_EQ(d.service_all.count(), 3);
  EXPECT_EQ(d.service_reads.count(), 2);
  // The all-slice service mean is the count-weighted combination.
  EXPECT_NEAR(d.all.mean_service_ms,
              (2 * d.reads.mean_service_ms + 1 * d.writes.mean_service_ms) /
                  3.0,
              1e-9);
}

TEST(DayMetricsTest, EmptySnapshot) {
  driver::PerfMonitor m;
  const disk::SeekModel model = disk::SeekModel::Linear(1.0, 0.1, 10);
  const DayMetrics d = DayMetrics::From(m.Snapshot(), model);
  EXPECT_EQ(d.all.count, 0);
  EXPECT_DOUBLE_EQ(d.all.mean_seek_ms, 0.0);
  EXPECT_DOUBLE_EQ(d.all.zero_seek_pct, 0.0);
}

}  // namespace
}  // namespace abr::core
