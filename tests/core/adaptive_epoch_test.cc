// Differential twins for lookahead-adaptive epoch barriers: the adaptive
// engine (multi-grid windows) must be bit-identical to the fixed-epoch
// oracle (adaptive_epoch = false) on both barrier engines — the sharded
// fleet and the RAID array — for any thread count, under clean traffic
// and under randomized faults, crashes, and reboots. The windows
// themselves are checked against the lookahead bound: a window never
// overshoots a member's next provable fault/crash event.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "array/array_device.h"
#include "core/array_day.h"
#include "core/sharded_system.h"
#include "disk/disk.h"
#include "disk/drive_spec.h"
#include "driver/table_store.h"
#include "fault/fault_plan.h"
#include "fault/faulty_disk.h"
#include "workload/synthetic.h"

namespace abr::core {
namespace {

// --- Fingerprint helpers (sharded_system_test.cc idiom) ---------------------

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t Bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t SliceFp(std::uint64_t h, const SliceMetrics& s) {
  h = Mix(h, Bits(s.mean_seek_ms));
  h = Mix(h, Bits(s.fcfs_seek_ms));
  h = Mix(h, Bits(s.mean_seek_dist));
  h = Mix(h, Bits(s.zero_seek_pct));
  h = Mix(h, Bits(s.mean_service_ms));
  h = Mix(h, Bits(s.mean_wait_ms));
  h = Mix(h, static_cast<std::uint64_t>(s.count));
  return h;
}

std::uint64_t PassFp(const placement::ArrangeResult& r) {
  std::uint64_t h = 0xA44A;
  h = Mix(h, static_cast<std::uint64_t>(r.cleaned));
  h = Mix(h, static_cast<std::uint64_t>(r.copied));
  h = Mix(h, static_cast<std::uint64_t>(r.skipped));
  h = Mix(h, static_cast<std::uint64_t>(r.aborted));
  h = Mix(h, static_cast<std::uint64_t>(r.kept));
  h = Mix(h, static_cast<std::uint64_t>(r.shuffled));
  h = Mix(h, static_cast<std::uint64_t>(r.evicted));
  h = Mix(h, static_cast<std::uint64_t>(r.admitted));
  h = Mix(h, r.halted ? 1 : 0);
  h = Mix(h, static_cast<std::uint64_t>(r.internal_ios));
  h = Mix(h, static_cast<std::uint64_t>(r.io_time));
  return h;
}

// Deliberately excludes DayMetrics::barriers and the barrier wall-clock
// fields: fewer barriers for the same simulated outcome is the adaptive
// mode's entire point, so the fingerprint covers what the simulation
// computed, not how many parallel windows computed it.
std::uint64_t DayFp(const DayMetrics& day) {
  std::uint64_t h = 0xDA1;
  h = SliceFp(h, day.all);
  h = SliceFp(h, day.reads);
  h = SliceFp(h, day.writes);
  h = Mix(h, static_cast<std::uint64_t>(day.faults.media_errors));
  h = Mix(h, static_cast<std::uint64_t>(day.faults.retries));
  h = Mix(h, static_cast<std::uint64_t>(day.faults.failed_requests));
  h = Mix(h, static_cast<std::uint64_t>(day.faults.aborted_chains));
  h = Mix(h, static_cast<std::uint64_t>(day.moves.copy_ins));
  h = Mix(h, static_cast<std::uint64_t>(day.moves.shuffles));
  h = Mix(h, static_cast<std::uint64_t>(day.moves.evictions));
  h = Mix(h, PassFp(day.arrange));
  return h;
}

std::uint64_t TableFp(const driver::AdaptiveDriver& drv) {
  std::uint64_t h = 0x7AB1;
  for (const driver::BlockTableEntry& e : drv.block_table().entries()) {
    h = Mix(h, static_cast<std::uint64_t>(e.original));
    h = Mix(h, static_cast<std::uint64_t>(e.relocated));
    h = Mix(h, e.dirty ? 1 : 0);
  }
  return h;
}

std::uint64_t PayloadFp(const disk::Disk& disk) {
  std::uint64_t h = 0xD15C;
  const std::int64_t n = disk.geometry().total_sectors();
  for (SectorNo s = 0; s < n; ++s) h = Mix(h, disk.ReadPayload(s));
  return h;
}

/// Hashes the merged completion stream and checks time order.
struct HashSink : sim::ShardCompletionSink {
  std::uint64_t hash = 0x51AB;
  std::int64_t count = 0;
  Micros last_time = 0;
  bool ordered = true;

  void OnShardIoComplete(std::int32_t shard,
                         const sim::CompletedIo& done) override {
    if (done.completion_time < last_time) ordered = false;
    last_time = done.completion_time;
    hash = Mix(hash, static_cast<std::uint64_t>(shard));
    hash = Mix(hash, static_cast<std::uint64_t>(done.completion_time));
    hash = Mix(hash, static_cast<std::uint64_t>(done.request.sector));
    hash = Mix(hash, static_cast<std::uint64_t>(done.service_time));
    ++count;
  }
};

// --- Fleet twin -------------------------------------------------------------

constexpr Micros kGrid = 30 * kSecond;

ShardedSystemConfig FleetConfig(std::int32_t shards, std::int32_t threads,
                                bool adaptive) {
  ShardedSystemConfig config;
  config.shards = shards;
  config.threads = threads;
  config.epoch = kGrid;
  config.adaptive_epoch = adaptive;
  config.drive = disk::DriveSpec::TestDrive();
  config.reserved_cylinders = 10;
  config.rearrange_blocks = 64;
  return config;
}

ShardedDayConfig FleetDay(Micros day_length) {
  ShardedDayConfig day;
  day.synthetic.population = 300;
  day.synthetic.theta = 1.0;
  day.synthetic.write_fraction = 0.3;
  day.synthetic.arrivals.mean_burst_gap = 2 * kSecond;
  day.synthetic.arrivals.mean_burst_size = 4.0;
  day.synthetic.arrivals.mean_intra_gap = 20 * kMillisecond;
  day.day_length = day_length;
  day.seed = 0xC0FFEE;
  return day;
}

struct TwinOutcome {
  std::uint64_t fp = 0;
  std::int64_t barriers = 0;
};

TwinOutcome RunCleanFleet(bool adaptive, std::int32_t threads) {
  ShardedSystem sys(FleetConfig(/*shards=*/3, threads, adaptive));
  HashSink sink;
  sys.set_completion_sink(&sink);
  EXPECT_TRUE(sys.Start().ok());
  ShardedDayRunner runner(&sys, FleetDay(3 * kMinute));

  TwinOutcome out;
  out.fp = 0xF1EE7;
  for (int phase = 0; phase < 2; ++phase) {
    StatusOr<DayMetrics> day = runner.RunMeasuredDay();
    EXPECT_TRUE(day.ok());
    if (day.ok()) {
      out.fp = Mix(out.fp, DayFp(*day));
      out.barriers += day->barriers;
    }
    Status pass = (phase % 2 == 0) ? runner.RearrangeForNextDay()
                                   : runner.CleanForNextDay();
    EXPECT_TRUE(pass.ok());
    out.fp = Mix(out.fp, PassFp(runner.last_arrange()));
  }
  for (std::int32_t s = 0; s < 3; ++s) {
    out.fp = Mix(out.fp, TableFp(sys.shard_driver(s)));
    out.fp = Mix(out.fp, PayloadFp(sys.shard_driver(s).disk()));
  }
  out.fp = Mix(out.fp, sink.hash);
  out.fp = Mix(out.fp, static_cast<std::uint64_t>(sink.count));
  EXPECT_TRUE(sink.ordered);
  EXPECT_GT(sink.count, 0);
  return out;
}

TEST(AdaptiveEpochTest, FleetMatchesFixedOracleAndFusesWhenQuiet) {
  const TwinOutcome fixed = RunCleanFleet(/*adaptive=*/false, /*threads=*/1);
  const TwinOutcome adaptive = RunCleanFleet(/*adaptive=*/true, /*threads=*/1);
  const TwinOutcome adaptive_mt =
      RunCleanFleet(/*adaptive=*/true, /*threads=*/4);

  EXPECT_EQ(adaptive.fp, fixed.fp);
  EXPECT_EQ(adaptive_mt.fp, fixed.fp);
  EXPECT_EQ(adaptive_mt.barriers, adaptive.barriers);
  // Clean members schedule no fault events, so quiet grids fuse: the same
  // two days take strictly fewer parallel windows.
  EXPECT_GT(adaptive.barriers, 0);
  EXPECT_LT(adaptive.barriers, fixed.barriers);
}

// Randomized twin under media faults, torn writes, io-indexed and timed
// crash points, and reboots — the sharded_system_test faulty scenario with
// the epoch mode as the variable under test.
std::uint64_t RunFaultyFleet(std::uint64_t seed, bool adaptive,
                             std::int32_t threads, int* reboots_out) {
  const std::int32_t shards = 1 + static_cast<std::int32_t>(seed % 4);
  const ShardedSystemConfig config = FleetConfig(shards, threads, adaptive);
  const Micros day_len = 3 * kMinute;

  std::vector<std::unique_ptr<fault::FaultyDisk>> disks;
  std::vector<std::unique_ptr<driver::InMemoryTableStore>> stores;
  ShardedSystem::Deps deps;
  for (std::int32_t s = 0; s < shards; ++s) {
    fault::FaultPlanConfig plan_cfg;
    plan_cfg.sector_count = config.drive.geometry.total_sectors();
    plan_cfg.transient_faults = 2;
    plan_cfg.persistent_faults = 1;
    plan_cfg.torn_writes = 1;
    plan_cfg.crash_points = static_cast<std::int32_t>((seed + s) % 2);
    plan_cfg.io_horizon = 400;
    fault::FaultPlan plan =
        fault::FaultPlan::Random(seed * 0x9E37 + s, plan_cfg);
    if (s == 0) {
      // A wall-schedule crash mid day 1 exercises the timed branch of the
      // lookahead bound (io-indexed triggers pin it to zero).
      fault::CrashPoint timed;
      timed.at_time = 100 * kSecond;
      plan.crashes.push_back(timed);
    }
    disks.push_back(
        std::make_unique<fault::FaultyDisk>(config.drive, plan, seed ^ s));
    stores.push_back(std::make_unique<driver::InMemoryTableStore>());
    deps.disks.push_back(disks.back().get());
    deps.stores.push_back(stores.back().get());
  }

  HashSink sink;
  auto sys = std::make_unique<ShardedSystem>(config, deps);
  sys->set_completion_sink(&sink);
  Status st = sys->Start();
  EXPECT_TRUE(st.ok()) << st.message();

  std::uint64_t fp = 0x5EED;
  int reboots = 0;
  auto reboot = [&]() {
    sys.reset();
    for (auto& d : disks) d->ClearCrash();
    sys = std::make_unique<ShardedSystem>(config, deps);
    sys->set_completion_sink(&sink);
    sink.last_time = 0;  // per-boot clocks restart
    Status rs = sys->Start(/*after_crash=*/true);
    EXPECT_TRUE(rs.ok()) << rs.message();
    ++reboots;
  };

  workload::SyntheticBlockWorkload workload(0, sys->device_blocks(),
                                            FleetDay(day_len).synthetic, seed);
  workload::Trace trace;
  Micros clock = sys->now();
  for (int phase = 0; phase < 3; ++phase) {
    (void)sys->ReadStatsMerged(/*clear=*/true);
    const Micros start = std::max(clock, sys->now());
    trace.Clear();
    workload.Generate(start, start + day_len, trace);
    Status sub = sys->SubmitBatch(trace.records().data(), trace.size());
    EXPECT_TRUE(sub.ok()) << sub.message();
    EXPECT_TRUE(sys->AdvanceTo(start + day_len).ok());
    EXPECT_TRUE(sys->Drain().ok());
    clock = start + day_len;
    fp = Mix(fp, DayFp(DayMetrics::From(sys->ReadStatsMerged(/*clear=*/true),
                                        sys->seek_model())));
    if (sys->halted()) {
      fp = Mix(fp, 0xDEAD);
      reboot();
      continue;
    }
    StatusOr<placement::ArrangeResult> pass =
        (phase % 2 == 0) ? sys->RearrangeAll() : sys->CleanAll();
    if (pass.ok()) {
      fp = Mix(fp, PassFp(*pass));
      if (pass->halted || sys->halted()) {
        fp = Mix(fp, 0xDEAD);
        reboot();
      }
    } else {
      fp = Mix(fp, 0xBAD);
      if (sys->halted()) reboot();
    }
  }

  for (std::int32_t s = 0; s < shards; ++s) {
    fp = Mix(fp, TableFp(sys->shard_driver(s)));
    fp = Mix(fp, PayloadFp(*deps.disks[static_cast<std::size_t>(s)]));
  }
  fp = Mix(fp, sink.hash);
  fp = Mix(fp, static_cast<std::uint64_t>(sink.count));
  fp = Mix(fp, static_cast<std::uint64_t>(reboots));
  EXPECT_TRUE(sink.ordered);
  if (reboots_out != nullptr) *reboots_out += reboots;
  return fp;
}

TEST(AdaptiveEpochTest, FleetMatchesFixedUnderFaultsCrashesAndReboots) {
  int reboots = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::uint64_t fixed =
        RunFaultyFleet(seed, /*adaptive=*/false, /*threads=*/1, &reboots);
    EXPECT_EQ(fixed,
              RunFaultyFleet(seed, /*adaptive=*/true, /*threads=*/1, nullptr));
    EXPECT_EQ(fixed,
              RunFaultyFleet(seed, /*adaptive=*/true, /*threads=*/4, nullptr));
  }
  // The sweep must exercise the crash/reboot path, not just media faults.
  EXPECT_GT(reboots, 0);
}

TEST(AdaptiveEpochTest, FleetWindowNeverOvershootsATimedCrash) {
  const ShardedSystemConfig config =
      FleetConfig(/*shards=*/2, /*threads=*/1, /*adaptive=*/true);

  // Member 0 crashes by wall schedule half way through grid 3.
  fault::FaultPlan crashy;
  fault::CrashPoint timed;
  timed.at_time = 2 * kGrid + kGrid / 2;
  crashy.crashes.push_back(timed);
  fault::FaultyDisk d0(config.drive, crashy, 1);
  fault::FaultyDisk d1(config.drive, fault::FaultPlan{}, 2);
  driver::InMemoryTableStore s0, s1;
  ShardedSystem::Deps deps;
  deps.disks = {&d0, &d1};
  deps.stores = {&s0, &s1};

  ShardedSystem sys(config, deps);
  ASSERT_TRUE(sys.Start().ok());
  // Grids 1 and 2 end at or before the crash bound and fuse; grid 3 would
  // end past it and is refused, even with a far larger advance on offer.
  EXPECT_EQ(sys.PlanStepEnd(20 * kGrid), 2 * kGrid);
  // The bound caps the window, not the advance: a sub-grid request is
  // honored exactly.
  EXPECT_EQ(sys.PlanStepEnd(kGrid / 2), kGrid / 2);
}

TEST(AdaptiveEpochTest, FleetFixedModePlansSingleGrids) {
  ShardedSystem sys(FleetConfig(/*shards=*/2, /*threads=*/1,
                                /*adaptive=*/false));
  ASSERT_TRUE(sys.Start().ok());
  EXPECT_EQ(sys.PlanStepEnd(20 * kGrid), kGrid);
}

// --- Array twin -------------------------------------------------------------

constexpr Micros kArrayGrid = 15 * kSecond;

array::ArrayConfig ArrayTwinConfig(array::RaidLevel level,
                                   std::int32_t members, bool adaptive,
                                   std::int32_t threads) {
  array::ArrayConfig c;
  c.level = level;
  c.members = members;
  c.threads = threads;
  c.chunk_blocks = 4;
  c.epoch = kArrayGrid;
  c.adaptive_epoch = adaptive;
  c.drive = disk::DriveSpec::TestDrive(60, 2, 32);
  c.reserved_cylinders = 8;
  c.rearrange_blocks = 16;
  c.spare_slots = 4;
  c.resync_granule_blocks = 4;
  c.driver.block_size_bytes = 8192;
  c.driver.request_monitor_capacity = 1 << 12;
  return c;
}

ArrayDayConfig ArrayTwinDay() {
  ArrayDayConfig day;
  day.synthetic.population = 200;
  day.synthetic.theta = 1.0;
  day.synthetic.write_fraction = 0.3;
  day.synthetic.arrivals.mean_burst_gap = kSecond;
  day.synthetic.arrivals.mean_burst_size = 4.0;
  day.synthetic.arrivals.mean_intra_gap = 20 * kMillisecond;
  day.day_length = 2 * kMinute;
  day.seed = 0xBEEF;
  day.chunk = kArrayGrid;
  return day;
}

TwinOutcome RunArrayTwin(array::RaidLevel level, std::int32_t members,
                         bool adaptive, std::int32_t threads,
                         std::vector<fault::FaultPlan> plans = {}) {
  array::ArrayConfig c = ArrayTwinConfig(level, members, adaptive, threads);
  c.fault_plans = std::move(plans);
  array::ArrayDevice dev(c);
  EXPECT_TRUE(dev.Start().ok()) << dev.first_error();
  ArrayDayRunner runner(&dev, ArrayTwinDay());

  TwinOutcome out;
  out.fp = 0xA77A;
  for (int phase = 0; phase < 2; ++phase) {
    StatusOr<DayMetrics> day = runner.RunMeasuredDay();
    EXPECT_TRUE(day.ok());
    if (day.ok()) {
      out.fp = Mix(out.fp, DayFp(*day));
      out.barriers += day->barriers;
    }
    Status pass = (phase % 2 == 0) ? runner.RearrangeForNextDay()
                                   : runner.CleanForNextDay();
    EXPECT_TRUE(pass.ok());
    out.fp = Mix(out.fp, PassFp(runner.last_arrange()));
  }
  for (std::int32_t m = 0; m < members; ++m) {
    out.fp = Mix(out.fp, TableFp(dev.member_driver(m)));
    out.fp = Mix(out.fp, PayloadFp(dev.member_disk(m)));
  }
  out.fp = Mix(out.fp, static_cast<std::uint64_t>(dev.lost_requests()));
  EXPECT_TRUE(dev.first_error().empty()) << dev.first_error();
  return out;
}

TEST(AdaptiveEpochTest, ArrayRaid0MatchesFixedOracleAndFuses) {
  const TwinOutcome fixed =
      RunArrayTwin(array::RaidLevel::kRaid0, 3, /*adaptive=*/false, 1);
  const TwinOutcome adaptive =
      RunArrayTwin(array::RaidLevel::kRaid0, 3, /*adaptive=*/true, 1);
  const TwinOutcome adaptive_mt =
      RunArrayTwin(array::RaidLevel::kRaid0, 3, /*adaptive=*/true, 2);

  EXPECT_EQ(adaptive.fp, fixed.fp);
  EXPECT_EQ(adaptive_mt.fp, fixed.fp);
  EXPECT_EQ(adaptive_mt.barriers, adaptive.barriers);
  EXPECT_GT(adaptive.barriers, 0);
  EXPECT_LT(adaptive.barriers, fixed.barriers);
}

TEST(AdaptiveEpochTest, ArrayRaid1NeverFusesButStaysIdentical) {
  const TwinOutcome fixed =
      RunArrayTwin(array::RaidLevel::kRaid1, 2, /*adaptive=*/false, 1);
  const TwinOutcome adaptive =
      RunArrayTwin(array::RaidLevel::kRaid1, 2, /*adaptive=*/true, 1);

  EXPECT_EQ(adaptive.fp, fixed.fp);
  // Mirror reads route on live head positions at submit time, so RAID1
  // refuses multi-grid windows: the barrier count must not change.
  EXPECT_EQ(adaptive.barriers, fixed.barriers);
}

TEST(AdaptiveEpochTest, ArrayRaid0MatchesFixedUnderMediaFaults) {
  auto make_plans = [] {
    std::vector<fault::FaultPlan> plans;
    for (std::int32_t m = 0; m < 3; ++m) {
      fault::FaultPlanConfig plan_cfg;
      plan_cfg.sector_count =
          disk::DriveSpec::TestDrive(60, 2, 32).geometry.total_sectors();
      plan_cfg.transient_faults = 2;
      plan_cfg.persistent_faults = 1;
      plan_cfg.torn_writes = 1;
      plan_cfg.crash_points = 0;
      plan_cfg.io_horizon = 300;
      plans.push_back(fault::FaultPlan::Random(0xFA07 + m, plan_cfg));
    }
    return plans;
  };
  const TwinOutcome fixed = RunArrayTwin(array::RaidLevel::kRaid0, 3,
                                         /*adaptive=*/false, 1, make_plans());
  const TwinOutcome adaptive = RunArrayTwin(array::RaidLevel::kRaid0, 3,
                                            /*adaptive=*/true, 1, make_plans());
  EXPECT_EQ(adaptive.fp, fixed.fp);
  // Armed io-indexed triggers pin the lookahead bound to zero, so fused
  // windows can only appear once budgets are spent — never more barriers
  // than the oracle.
  EXPECT_LE(adaptive.barriers, fixed.barriers);
}

TEST(AdaptiveEpochTest, ArrayWindowNeverOvershootsATimedCrash) {
  array::ArrayConfig c =
      ArrayTwinConfig(array::RaidLevel::kRaid0, 3, /*adaptive=*/true, 1);
  c.fault_plans.resize(3);
  fault::CrashPoint timed;
  timed.at_time = 2 * kArrayGrid + kArrayGrid / 2;
  c.fault_plans[1].crashes.push_back(timed);
  array::ArrayDevice dev(c);
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();

  // Member 1's scheduled crash caps both the step window (grid 3 would
  // end past the bound) and how far submissions may batch ahead.
  EXPECT_EQ(dev.PlanStepEnd(20 * kArrayGrid), 2 * kArrayGrid);
  EXPECT_EQ(dev.PlanSubmitHorizon(20 * kArrayGrid), timed.at_time);

  // RAID1 exposes no batching horizon at all.
  array::ArrayDevice mirror(
      ArrayTwinConfig(array::RaidLevel::kRaid1, 2, /*adaptive=*/true, 1));
  ASSERT_TRUE(mirror.Start().ok()) << mirror.first_error();
  EXPECT_EQ(mirror.PlanStepEnd(20 * kArrayGrid), kArrayGrid);
  EXPECT_EQ(mirror.PlanSubmitHorizon(20 * kArrayGrid), 0);  // == advanced_to
}

}  // namespace
}  // namespace abr::core
