#include "placement/delta_plan.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "disk/drive_spec.h"
#include "driver/block_table.h"

namespace abr::placement {
namespace {

class DeltaPlanTest : public ::testing::Test {
 protected:
  DeltaPlanTest()
      : region_(disk::DriveSpec::TestDrive().geometry,
                /*data_first_sector=*/1000, /*slot_count=*/8,
                /*block_sectors=*/16),
        table_(/*capacity=*/16) {}

  SectorNo Slot(std::int32_t slot) const { return region_.SlotSector(slot); }

  /// Replays the plan against the table's mapping and checks the step
  /// invariant: every move's target slot is free when the move runs.
  /// Returns the final slot -> original occupancy.
  std::map<std::int32_t, SectorNo> Apply(const DeltaPlan& plan) {
    std::map<std::int32_t, SectorNo> by_slot;
    std::map<SectorNo, std::int32_t> by_original;
    for (const driver::BlockTableEntry& e : table_.entries()) {
      const std::int32_t slot =
          static_cast<std::int32_t>((e.relocated - Slot(0)) /
                                    region_.block_sectors());
      by_slot[slot] = e.original;
      by_original[e.original] = slot;
    }
    for (SectorNo original : plan.evicts) {
      auto it = by_original.find(original);
      EXPECT_TRUE(it != by_original.end()) << "evicting absent " << original;
      if (it == by_original.end()) continue;
      by_slot.erase(it->second);
      by_original.erase(it);
    }
    for (const DeltaMove& m : plan.shuffles) {
      EXPECT_FALSE(by_slot.contains(m.to_slot))
          << "shuffle into occupied slot " << m.to_slot;
      auto it = by_original.find(m.original);
      EXPECT_TRUE(it != by_original.end()) << "shuffling absent " << m.original;
      if (it == by_original.end()) continue;
      by_slot.erase(it->second);
      by_slot[m.to_slot] = m.original;
      it->second = m.to_slot;
    }
    for (const DeltaMove& m : plan.admits) {
      EXPECT_FALSE(by_slot.contains(m.to_slot))
          << "admit into occupied slot " << m.to_slot;
      EXPECT_FALSE(by_original.contains(m.original));
      by_slot[m.to_slot] = m.original;
      by_original[m.original] = m.to_slot;
    }
    return by_slot;
  }

  /// Checks that applying the plan lands exactly the desired layout.
  void ExpectLandsDesired(const DeltaPlan& plan,
                          const std::vector<SlotTarget>& desired) {
    const std::map<std::int32_t, SectorNo> landed = Apply(plan);
    EXPECT_EQ(landed.size(), desired.size());
    for (const SlotTarget& t : desired) {
      auto it = landed.find(t.slot);
      ASSERT_TRUE(it != landed.end()) << "slot " << t.slot << " empty";
      EXPECT_EQ(it->second, t.original) << "slot " << t.slot;
    }
  }

  ReservedRegion region_;
  driver::BlockTable table_;
};

TEST_F(DeltaPlanTest, EmptyTableAllAdmits) {
  const std::vector<SlotTarget> desired = {{800, 0}, {816, 1}, {832, 2}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.kept, 0);
  EXPECT_TRUE(plan.evicts.empty());
  EXPECT_TRUE(plan.shuffles.empty());
  ASSERT_EQ(plan.admits.size(), 3u);
  ExpectLandsDesired(plan, desired);
}

TEST_F(DeltaPlanTest, IdenticalLayoutAllKept) {
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());
  const std::vector<SlotTarget> desired = {{800, 0}, {816, 1}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.kept, 2);
  EXPECT_TRUE(plan.evicts.empty());
  EXPECT_TRUE(plan.shuffles.empty());
  EXPECT_TRUE(plan.admits.empty());
}

TEST_F(DeltaPlanTest, CooledBlocksEvicted) {
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());
  const std::vector<SlotTarget> desired = {{800, 0}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.kept, 1);
  ASSERT_EQ(plan.evicts.size(), 1u);
  EXPECT_EQ(plan.evicts[0], 816);
  ExpectLandsDesired(plan, desired);
}

TEST_F(DeltaPlanTest, ChainShufflesDependencyOrdered) {
  // X wants Y's slot; Y wants a free slot. Y must move first.
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());  // X
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());  // Y
  const std::vector<SlotTarget> desired = {{800, 1}, {816, 2}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.kept, 0);
  EXPECT_EQ(plan.spare_breaks, 0);
  ASSERT_EQ(plan.shuffles.size(), 2u);
  EXPECT_EQ(plan.shuffles[0].original, 816);
  EXPECT_EQ(plan.shuffles[0].to_slot, 2);
  EXPECT_EQ(plan.shuffles[1].original, 800);
  EXPECT_EQ(plan.shuffles[1].to_slot, 1);
  ExpectLandsDesired(plan, desired);
}

TEST_F(DeltaPlanTest, EvictFreesSlotForShuffle) {
  // Z cools off; X shuffles into Z's old slot.
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());  // X
  ASSERT_TRUE(table_.Insert(832, Slot(1)).ok());  // Z (cooling)
  const std::vector<SlotTarget> desired = {{800, 1}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  ASSERT_EQ(plan.evicts.size(), 1u);
  EXPECT_EQ(plan.evicts[0], 832);
  ASSERT_EQ(plan.shuffles.size(), 1u);
  EXPECT_EQ(plan.shuffles[0].original, 800);
  ExpectLandsDesired(plan, desired);
}

TEST_F(DeltaPlanTest, CycleBrokenViaSpareSlot) {
  // X and Y swap slots: a pure 2-cycle. With 8 slots there is a spare, so
  // the member targeting the smaller slot hops there first.
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());  // X
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());  // Y
  const std::vector<SlotTarget> desired = {{800, 1}, {816, 0}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.spare_breaks, 1);
  EXPECT_EQ(plan.demotions, 0);
  EXPECT_TRUE(plan.evicts.empty());
  EXPECT_TRUE(plan.admits.empty());
  // Three hops: Y to a spare, X into slot 1, Y into slot 0.
  ASSERT_EQ(plan.shuffles.size(), 3u);
  EXPECT_EQ(plan.shuffles[0].original, 816);
  EXPECT_GE(plan.shuffles[0].to_slot, 2);  // some spare slot
  EXPECT_EQ(plan.shuffles[1].original, 800);
  EXPECT_EQ(plan.shuffles[1].to_slot, 1);
  EXPECT_EQ(plan.shuffles[2].original, 816);
  EXPECT_EQ(plan.shuffles[2].to_slot, 0);
  ExpectLandsDesired(plan, desired);
}

TEST_F(DeltaPlanTest, ThreeCycleBrokenWithOneSpare) {
  // X -> Y's slot -> Z's slot -> X's slot: a 3-cycle needs only one spare.
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());
  ASSERT_TRUE(table_.Insert(832, Slot(2)).ok());
  const std::vector<SlotTarget> desired = {{800, 1}, {816, 2}, {832, 0}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.spare_breaks, 1);
  EXPECT_EQ(plan.shuffles.size(), 4u);  // one extra hop for the break
  ExpectLandsDesired(plan, desired);
}

TEST_F(DeltaPlanTest, CycleWithoutSpareDemotedToEvictAdmit) {
  // A fully desired region (every slot wanted) leaves no spare: the swap
  // cycle is broken by evicting one member and re-admitting it.
  ReservedRegion tiny(disk::DriveSpec::TestDrive().geometry,
                      /*data_first_sector=*/1000, /*slot_count=*/2,
                      /*block_sectors=*/16);
  ASSERT_TRUE(table_.Insert(800, tiny.SlotSector(0)).ok());
  ASSERT_TRUE(table_.Insert(816, tiny.SlotSector(1)).ok());
  const std::vector<SlotTarget> desired = {{800, 1}, {816, 0}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, tiny);
  EXPECT_EQ(plan.spare_breaks, 0);
  EXPECT_EQ(plan.demotions, 1);
  // The member targeting slot 0 (Y=816) is demoted.
  ASSERT_EQ(plan.evicts.size(), 1u);
  EXPECT_EQ(plan.evicts[0], 816);
  ASSERT_EQ(plan.admits.size(), 1u);
  EXPECT_EQ(plan.admits[0].original, 816);
  EXPECT_EQ(plan.admits[0].to_slot, 0);
  ASSERT_EQ(plan.shuffles.size(), 1u);
  EXPECT_EQ(plan.shuffles[0].original, 800);
}

TEST_F(DeltaPlanTest, EntryOutsideSlotGridIsEvicted) {
  // A relocated address not on the slot grid (stale geometry) is cleaned
  // out even if the block is still wanted, then re-admitted.
  ASSERT_TRUE(table_.Insert(800, Slot(0) + 3).ok());
  const std::vector<SlotTarget> desired = {{800, 0}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  ASSERT_EQ(plan.evicts.size(), 1u);
  EXPECT_EQ(plan.evicts[0], 800);
  ASSERT_EQ(plan.admits.size(), 1u);
  EXPECT_EQ(plan.admits[0].original, 800);
}

TEST_F(DeltaPlanTest, CanonicalAcrossEntryOrder) {
  driver::BlockTable other(/*capacity=*/16);
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());
  ASSERT_TRUE(table_.Insert(832, Slot(2)).ok());
  ASSERT_TRUE(other.Insert(832, Slot(2)).ok());
  ASSERT_TRUE(other.Insert(800, Slot(0)).ok());
  ASSERT_TRUE(other.Insert(816, Slot(1)).ok());
  const std::vector<SlotTarget> desired = {{816, 0}, {800, 1}, {848, 3}};
  const DeltaPlan a = BuildDeltaPlan(table_, desired, region_);
  const DeltaPlan b = BuildDeltaPlan(other, desired, region_);
  ASSERT_EQ(a.evicts.size(), b.evicts.size());
  for (std::size_t i = 0; i < a.evicts.size(); ++i) {
    EXPECT_EQ(a.evicts[i], b.evicts[i]);
  }
  ASSERT_EQ(a.shuffles.size(), b.shuffles.size());
  for (std::size_t i = 0; i < a.shuffles.size(); ++i) {
    EXPECT_EQ(a.shuffles[i].original, b.shuffles[i].original);
    EXPECT_EQ(a.shuffles[i].to_slot, b.shuffles[i].to_slot);
  }
  ASSERT_EQ(a.admits.size(), b.admits.size());
  for (std::size_t i = 0; i < a.admits.size(); ++i) {
    EXPECT_EQ(a.admits[i].original, b.admits[i].original);
    EXPECT_EQ(a.admits[i].to_slot, b.admits[i].to_slot);
  }
  EXPECT_EQ(a.kept, b.kept);
  EXPECT_EQ(a.spare_breaks, b.spare_breaks);
  EXPECT_EQ(a.demotions, b.demotions);
}

TEST_F(DeltaPlanTest, MixedPassLandsDesiredLayout) {
  // Kept + shuffle + evict + admit all in one plan.
  ASSERT_TRUE(table_.Insert(800, Slot(0)).ok());   // kept
  ASSERT_TRUE(table_.Insert(816, Slot(1)).ok());   // shuffled to 3
  ASSERT_TRUE(table_.Insert(832, Slot(2)).ok());   // evicted
  const std::vector<SlotTarget> desired = {{800, 0}, {816, 3}, {848, 1}};
  const DeltaPlan plan = BuildDeltaPlan(table_, desired, region_);
  EXPECT_EQ(plan.kept, 1);
  EXPECT_EQ(plan.evicts.size(), 1u);
  EXPECT_EQ(plan.shuffles.size(), 1u);
  EXPECT_EQ(plan.admits.size(), 1u);
  ExpectLandsDesired(plan, desired);
}

}  // namespace
}  // namespace abr::placement
