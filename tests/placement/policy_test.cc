#include "placement/policy.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "disk/geometry.h"

namespace abr::placement {
namespace {

using analyzer::BlockId;
using analyzer::HotBlock;

// Figure 3 setting: a reserved area of three cylinders with four blocks in
// each, file-system interleaving factor of one block.
disk::Geometry FigGeometry() {
  disk::Geometry g;
  g.cylinders = 12;
  g.tracks_per_cylinder = 1;
  g.sectors_per_track = 8;
  g.rpm = 3600;
  g.bytes_per_sector = 512;
  return g;
}

ReservedRegion FigRegion() {
  // Data slots start at sector 32 (cylinder 4); 12 slots of 2 sectors over
  // cylinders 4, 5, 6; organ-pipe cylinder order is 5, 6, 4.
  return ReservedRegion(FigGeometry(), 32, 12, 2);
}

HotBlock Hot(BlockNo block, std::int64_t count) {
  return HotBlock{BlockId{0, block}, count};
}

std::map<BlockNo, std::int32_t> SlotOf(const PlacementPlan& plan) {
  std::map<BlockNo, std::int32_t> out;
  for (const SlotAssignment& a : plan) out[a.id.block] = a.slot;
  return out;
}

TEST(OrganPipePolicyTest, HottestBlocksOnCenterCylinder) {
  OrganPipePolicy policy;
  std::vector<HotBlock> ranked;
  for (int i = 0; i < 12; ++i) ranked.push_back(Hot(i, 100 - i));
  const ReservedRegion region = FigRegion();
  const PlacementPlan plan = policy.Place(ranked, region);
  ASSERT_EQ(plan.size(), 12u);
  // The four hottest fill center cylinder 5 (slots 4..7); the next four
  // fill cylinder 6; the coolest four fill cylinder 4.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(region.SlotCylinder(plan[static_cast<std::size_t>(i)].slot), 5);
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(region.SlotCylinder(plan[static_cast<std::size_t>(i)].slot), 6);
  }
  for (int i = 8; i < 12; ++i) {
    EXPECT_EQ(region.SlotCylinder(plan[static_cast<std::size_t>(i)].slot), 4);
  }
}

TEST(OrganPipePolicyTest, RankOrderMatchesSlotOrder) {
  OrganPipePolicy policy;
  std::vector<HotBlock> ranked = {Hot(30, 50), Hot(10, 40), Hot(20, 30)};
  const ReservedRegion region = FigRegion();
  const PlacementPlan plan = policy.Place(ranked, region);
  const std::vector<std::int32_t> order = region.OrganPipeSlotOrder();
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].slot, order[i]);
    EXPECT_EQ(plan[i].id, ranked[i].id);
  }
}

TEST(SerialPolicyTest, PlacesInBlockNumberOrder) {
  SerialPolicy policy;
  // Counts pick the set; positions ignore them.
  std::vector<HotBlock> ranked = {Hot(50, 100), Hot(10, 90), Hot(30, 80)};
  const PlacementPlan plan = policy.Place(ranked, FigRegion());
  auto slots = SlotOf(plan);
  EXPECT_LT(slots[10], slots[30]);
  EXPECT_LT(slots[30], slots[50]);
  EXPECT_EQ(slots[10], 0);  // ascending from the first slot
}

TEST(SerialPolicyTest, MultiDeviceOrdering) {
  SerialPolicy policy;
  std::vector<HotBlock> ranked = {HotBlock{BlockId{1, 5}, 10},
                                  HotBlock{BlockId{0, 9}, 9}};
  const PlacementPlan plan = policy.Place(ranked, FigRegion());
  // Device 0 sorts before device 1.
  EXPECT_EQ(plan[0].id, (BlockId{0, 9}));
  EXPECT_EQ(plan[1].id, (BlockId{1, 5}));
}

TEST(InterleavedPolicyTest, FollowsSuccessorChains) {
  InterleavedPolicy policy(/*interleave_factor=*/1);
  // File A: blocks 10, 12, 14 with gently decaying frequencies (each
  // successor is "close": >= 50% of its predecessor).
  const std::vector<HotBlock> ranked = {Hot(10, 100), Hot(99, 90),
                                        Hot(50, 80),  Hot(12, 60),
                                        Hot(14, 35)};
  const ReservedRegion region = FigRegion();
  const PlacementPlan plan = policy.Place(ranked, region);
  auto slots = SlotOf(plan);
  ASSERT_EQ(plan.size(), 5u);
  // Chain 10 -> 12 laid out with the interleave stride inside center
  // cylinder 5 (slots 4..7): 10 at position 0, 12 at position 2.
  EXPECT_EQ(slots[10], 4);
  EXPECT_EQ(slots[12], 6);
  // 14 is 12's successor but position 4 does not exist in the cylinder:
  // it starts a later chain (first slot of next organ-pipe cylinder, 6).
  EXPECT_EQ(slots[14], 8);
  // Chain heads fill the gaps: 99 then 50.
  EXPECT_EQ(slots[99], 5);
  EXPECT_EQ(slots[50], 7);
}

TEST(InterleavedPolicyTest, ClosenessRuleBreaksChains) {
  InterleavedPolicy policy(/*interleave_factor=*/1, /*closeness=*/0.5);
  // 22 references 40 times < 50% of 100: not a successor.
  const std::vector<HotBlock> ranked = {Hot(20, 100), Hot(22, 40)};
  const PlacementPlan plan = policy.Place(ranked, FigRegion());
  auto slots = SlotOf(plan);
  // Both start chains at consecutive free positions, no stride gap.
  EXPECT_EQ(slots[20], 4);
  EXPECT_EQ(slots[22], 5);
}

TEST(InterleavedPolicyTest, CloseSuccessorUsesStride) {
  InterleavedPolicy policy(1, 0.5);
  const std::vector<HotBlock> ranked = {Hot(20, 100), Hot(22, 60)};
  const PlacementPlan plan = policy.Place(ranked, FigRegion());
  auto slots = SlotOf(plan);
  EXPECT_EQ(slots[20], 4);
  EXPECT_EQ(slots[22], 6);  // one-gap interleave preserved
}

TEST(InterleavedPolicyTest, ZeroFactorChainsContiguously) {
  InterleavedPolicy policy(/*interleave_factor=*/0);
  const std::vector<HotBlock> ranked = {Hot(20, 100), Hot(21, 80)};
  const PlacementPlan plan = policy.Place(ranked, FigRegion());
  auto slots = SlotOf(plan);
  EXPECT_EQ(slots[21], slots[20] + 1);
}

TEST(InterleavedPolicyTest, ChainsDoNotCrossDevices) {
  InterleavedPolicy policy(1);
  const std::vector<HotBlock> ranked = {HotBlock{BlockId{0, 10}, 100},
                                        HotBlock{BlockId{1, 12}, 60}};
  const PlacementPlan plan = policy.Place(ranked, FigRegion());
  // Device-1 block 12 is NOT device-0 block 10's successor.
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].slot, 4);
  EXPECT_EQ(plan[1].slot, 5);
}

TEST(StaggeredPolicyTest, StaggerOrderIsAPermutation) {
  for (std::int32_t n : {1, 2, 3, 4, 7, 8, 21, 79}) {
    const std::vector<std::int32_t> order =
        StaggeredPolicy::StaggerOrder(n);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(n)) << "n=" << n;
    std::set<std::int32_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(n)) << "n=" << n;
    EXPECT_EQ(*unique.begin(), 0);
    EXPECT_EQ(*unique.rbegin(), n - 1);
  }
}

TEST(StaggeredPolicyTest, EarlyRanksAreRotationallySpread) {
  const std::vector<std::int32_t> order = StaggeredPolicy::StaggerOrder(21);
  // The two hottest blocks of a cylinder sit roughly half a track apart
  // instead of adjacent.
  EXPECT_GE(std::abs(order[1] - order[0]), 21 / 3);
}

TEST(StaggeredPolicyTest, SameCylinderFillAsOrganPipe) {
  // Staggering only permutes positions *within* cylinders; the set of
  // blocks per cylinder matches organ-pipe.
  StaggeredPolicy staggered;
  OrganPipePolicy organ;
  std::vector<HotBlock> ranked;
  for (int i = 0; i < 12; ++i) ranked.push_back(Hot(i, 100 - i));
  const ReservedRegion region = FigRegion();
  auto cyl_sets = [&region](const PlacementPlan& plan) {
    std::map<Cylinder, std::set<BlockNo>> sets;
    for (const SlotAssignment& a : plan) {
      sets[region.SlotCylinder(a.slot)].insert(a.id.block);
    }
    return sets;
  };
  EXPECT_EQ(cyl_sets(staggered.Place(ranked, region)),
            cyl_sets(organ.Place(ranked, region)));
}

TEST(PolicyFactoryTest, NamesAndKinds) {
  EXPECT_STREQ(MakePolicy(PolicyKind::kOrganPipe)->name(), "Organ-pipe");
  EXPECT_STREQ(MakePolicy(PolicyKind::kInterleaved)->name(), "Interleaved");
  EXPECT_STREQ(MakePolicy(PolicyKind::kSerial)->name(), "Serial");
  EXPECT_STREQ(MakePolicy(PolicyKind::kStaggered)->name(), "Staggered");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kSerial), "Serial");
}

class AllPoliciesTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPoliciesTest, PlanIsValid) {
  auto policy = MakePolicy(GetParam(), 1);
  std::vector<HotBlock> ranked;
  for (int i = 0; i < 30; ++i) ranked.push_back(Hot(i * 3, 1000 - i * 7));
  const ReservedRegion region = FigRegion();
  const PlacementPlan plan = policy->Place(ranked, region);
  // Exactly slot_count blocks placed (ranked list larger than region).
  EXPECT_EQ(plan.size(), static_cast<std::size_t>(region.slot_count()));
  // Distinct slots in range; placed blocks drawn from the hottest prefix.
  std::set<std::int32_t> slots;
  std::set<BlockNo> placed;
  for (const SlotAssignment& a : plan) {
    EXPECT_GE(a.slot, 0);
    EXPECT_LT(a.slot, region.slot_count());
    EXPECT_TRUE(slots.insert(a.slot).second) << "duplicate slot " << a.slot;
    placed.insert(a.id.block);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(region.slot_count());
       ++i) {
    EXPECT_TRUE(placed.contains(ranked[i].id.block))
        << "hot block at rank " << i << " missing";
  }
}

TEST_P(AllPoliciesTest, EmptyRankedListGivesEmptyPlan) {
  auto policy = MakePolicy(GetParam(), 1);
  EXPECT_TRUE(policy->Place({}, FigRegion()).empty());
}

TEST_P(AllPoliciesTest, FewerBlocksThanSlots) {
  auto policy = MakePolicy(GetParam(), 1);
  const PlacementPlan plan =
      policy->Place({Hot(4, 10), Hot(8, 5)}, FigRegion());
  EXPECT_EQ(plan.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllPoliciesTest,
                         ::testing::Values(PolicyKind::kOrganPipe,
                                           PolicyKind::kInterleaved,
                                           PolicyKind::kSerial,
                                           PolicyKind::kStaggered),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case PolicyKind::kOrganPipe:
                               return "OrganPipe";
                             case PolicyKind::kInterleaved:
                               return "Interleaved";
                             case PolicyKind::kSerial:
                               return "Serial";
                             case PolicyKind::kStaggered:
                               return "Staggered";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace abr::placement
