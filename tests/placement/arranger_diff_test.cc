// Randomized differential test of the arrangement engine: two machines —
// one running the incremental delta-plan executor (production), one the
// full clean-everything-then-recopy rebuild (the oracle) — are driven
// through identical day workloads and identical ranked hot lists, over
// disks with identical fault plans. After every pass the block-table
// mapping sets must be bit-identical, the translated payload view of
// every block must equal its original contents on both machines, and —
// after a head/clock sync barrier — subsequent-day request streams must
// produce bit-identical timing, request records and performance
// histograms. The incremental path may differ only in how much movement
// I/O it spends and in which surviving entries still carry a dirty bit
// (it keeps bits the rebuild launders; its dirty set is a superset).

#include "placement/arranger.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "disk/drive_spec.h"
#include "driver/adaptive_driver.h"
#include "fault/crash_table_store.h"
#include "fault/fault_plan.h"
#include "fault/faulty_disk.h"
#include "placement/policy.h"
#include "util/rng.h"

namespace abr::placement {
namespace {

using analyzer::BlockId;
using analyzer::HotBlock;

constexpr std::int32_t kBlockSectors = 16;
constexpr BlockNo kHotPool = 48;  // hot sets are drawn from [0, kHotPool)
constexpr BlockNo kBlocks = 56;   // day traffic spans [0, kBlocks)

std::uint64_t StampTag(BlockNo b) {
  return 0xB0000000ull + static_cast<std::uint64_t>(b) * 0x100;
}

/// Flattens a PerfSnapshot into an exactly comparable integer vector.
std::vector<std::int64_t> PerfFingerprint(const driver::PerfSnapshot& s) {
  std::vector<std::int64_t> fp;
  for (const driver::PerfSide* side : {&s.reads, &s.writes, &s.all}) {
    for (std::int64_t c : side->fcfs_seek_distance.counts()) fp.push_back(c);
    fp.push_back(-1);
    for (std::int64_t c : side->sched_seek_distance.counts()) fp.push_back(c);
    fp.push_back(-1);
    fp.push_back(side->service_time.count());
    fp.push_back(side->service_time.total());
    fp.push_back(side->queue_time.count());
    fp.push_back(side->queue_time.total());
    fp.push_back(side->rotation_total);
    fp.push_back(side->transfer_total);
    fp.push_back(side->buffer_hits);
  }
  fp.push_back(s.faults.media_errors);
  fp.push_back(s.faults.retries);
  fp.push_back(s.faults.failed_requests);
  fp.push_back(s.faults.aborted_chains);
  fp.push_back(s.faults.recovery_dirtied);
  fp.push_back(s.faults.recovery_fallbacks);
  // No movement may happen during a measured day on either machine.
  fp.push_back(s.moves.copy_ins);
  fp.push_back(s.moves.shuffles);
  fp.push_back(s.moves.evictions);
  return fp;
}

/// One machine: faulty disk + crash-accurate table store + driver + its
/// arranger. Both instances see the same workloads and ranked lists; only
/// ArrangerConfig::incremental differs.
struct Instance {
  std::unique_ptr<fault::FaultyDisk> disk;
  fault::CrashTableStore store;
  std::unique_ptr<driver::AdaptiveDriver> driver;
  OrganPipePolicy policy;
  std::unique_ptr<BlockArranger> arranger;

  void Create(fault::FaultPlan plan, std::uint64_t seed, bool incremental) {
    disk = std::make_unique<fault::FaultyDisk>(disk::DriveSpec::TestDrive(),
                                               std::move(plan), seed);
    ArrangerConfig config;
    config.incremental = incremental;
    arranger = std::make_unique<BlockArranger>(&policy, config);
    Rebuild(/*after_crash=*/false);
  }

  void Rebuild(bool after_crash) {
    driver.reset();
    disk->ClearCrash();
    auto label = disk::DiskLabel::Rearranged(disk->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver::DriverConfig config;
    config.block_table_capacity = 16;
    driver = std::make_unique<driver::AdaptiveDriver>(
        disk.get(), std::move(*label), config, &store);
    disk->set_table_observer(&store);
    ASSERT_TRUE(driver->Attach(after_crash).ok());
    disk->SetTableArea(45 * 128, driver->table_area_sectors());
  }

  SectorNo OriginalOf(BlockNo b) const {
    const auto extents =
        driver->MapVirtualExtent(b * kBlockSectors, kBlockSectors);
    EXPECT_EQ(extents.size(), 1u);
    return extents[0].sector;
  }
};

class ArrangerDiffTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void Start(const fault::FaultPlan& plan) {
    incr_.Create(plan, GetParam(), /*incremental=*/true);
    full_.Create(plan, GetParam(), /*incremental=*/false);
    for (BlockNo b = 0; b < kBlocks; ++b) {
      for (Instance* inst : {&incr_, &full_}) {
        const SectorNo start = inst->OriginalOf(b);
        for (std::int32_t k = 0; k < kBlockSectors; ++k) {
          inst->disk->WritePayload(start + k,
                                   StampTag(b) + static_cast<std::uint64_t>(k));
        }
      }
    }
    hot_.clear();
    for (BlockNo b = 0; b < 12; ++b) hot_.push_back(b);
  }

  /// Replaces a few hot-set members and re-ranks the rest, so successive
  /// passes mix kept blocks, rank-order shuffles, evictions and admits.
  void DriftHotSet(Rng& rng) {
    const std::size_t churn = rng.NextBounded(4);
    for (std::size_t i = 0; i < churn; ++i) {
      BlockNo repl;
      do {
        repl = static_cast<BlockNo>(rng.NextBounded(kHotPool));
      } while (std::find(hot_.begin(), hot_.end(), repl) != hot_.end());
      hot_[rng.NextBounded(hot_.size())] = repl;
    }
    for (std::size_t i = hot_.size(); i > 1; --i) {
      std::swap(hot_[i - 1], hot_[rng.NextBounded(i)]);
    }
  }

  std::vector<HotBlock> Ranked() const {
    std::vector<HotBlock> ranked;
    std::int64_t count = 1 << 20;
    for (BlockNo b : hot_) {
      ranked.push_back(HotBlock{BlockId{0, b}, count});
      count -= 13;
    }
    return ranked;
  }

  /// Runs one day of identical traffic on both machines, then proves the
  /// day was bit-identical (timing, records, histograms) and clears the
  /// monitors on both sides.
  void RunDay(Rng& rng, int steps) {
    ASSERT_EQ(incr_.driver->now(), full_.driver->now());
    Micros t = incr_.driver->now();
    for (int i = 0; i < steps; ++i) {
      t += 1 + static_cast<Micros>(rng.NextBounded(4000));
      const BlockNo b = static_cast<BlockNo>(rng.NextBounded(kBlocks));
      const sched::IoType type = rng.NextBernoulli(0.3)
                                     ? sched::IoType::kWrite
                                     : sched::IoType::kRead;
      const Status a = incr_.driver->SubmitBlock(0, b, type, t);
      const Status c = full_.driver->SubmitBlock(0, b, type, t);
      ASSERT_EQ(a.ToString(), c.ToString()) << "step " << i;
    }
    incr_.driver->Drain();
    full_.driver->Drain();
    ASSERT_EQ(incr_.driver->now(), full_.driver->now());
    const std::vector<driver::RequestRecord> ir =
        incr_.driver->IoctlReadRequests();
    const std::vector<driver::RequestRecord> fr =
        full_.driver->IoctlReadRequests();
    ASSERT_EQ(ir.size(), fr.size());
    for (std::size_t i = 0; i < ir.size(); ++i) {
      ASSERT_EQ(ir[i].device, fr[i].device) << "record " << i;
      ASSERT_EQ(ir[i].block, fr[i].block) << "record " << i;
      ASSERT_EQ(ir[i].size_bytes, fr[i].size_bytes) << "record " << i;
      ASSERT_EQ(ir[i].type, fr[i].type) << "record " << i;
    }
    ASSERT_EQ(PerfFingerprint(incr_.driver->IoctlReadStats()),
              PerfFingerprint(full_.driver->IoctlReadStats()));
  }

  /// The two passes spend different amounts of movement I/O, so clocks and
  /// head positions diverge during a pass. Re-synchronize: drain both,
  /// level the clocks, issue one identical positioning read (a never-hot,
  /// never-faulted block), level again, and clear the monitors. After the
  /// barrier the machines are in bit-identical externally-visible state.
  void SyncBarrier() {
    incr_.driver->Drain();
    full_.driver->Drain();
    Micros m = std::max(incr_.driver->now(), full_.driver->now());
    incr_.driver->AdvanceTo(m);
    full_.driver->AdvanceTo(m);
    ASSERT_TRUE(
        incr_.driver->SubmitBlock(0, kBlocks - 1, sched::IoType::kRead, m)
            .ok());
    ASSERT_TRUE(
        full_.driver->SubmitBlock(0, kBlocks - 1, sched::IoType::kRead, m)
            .ok());
    incr_.driver->Drain();
    full_.driver->Drain();
    m = std::max(incr_.driver->now(), full_.driver->now());
    incr_.driver->AdvanceTo(m);
    full_.driver->AdvanceTo(m);
    (void)incr_.driver->IoctlReadStats();
    (void)full_.driver->IoctlReadStats();
    (void)incr_.driver->IoctlReadRequests();
    (void)full_.driver->IoctlReadRequests();
  }

  /// Post-pass invariant: identical mapping sets; the incremental dirty
  /// set is a superset of the rebuild's (which launders bits by recopying).
  void CheckConverged() {
    std::vector<driver::BlockTableEntry> a(
        incr_.driver->block_table().entries().begin(),
        incr_.driver->block_table().entries().end());
    std::vector<driver::BlockTableEntry> b(
        full_.driver->block_table().entries().begin(),
        full_.driver->block_table().entries().end());
    const auto by_original = [](const driver::BlockTableEntry& x,
                                const driver::BlockTableEntry& y) {
      return x.original < y.original;
    };
    std::sort(a.begin(), a.end(), by_original);
    std::sort(b.begin(), b.end(), by_original);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].original, b[i].original) << "entry " << i;
      ASSERT_EQ(a[i].relocated, b[i].relocated) << "entry " << i;
      if (b[i].dirty) {
        EXPECT_TRUE(a[i].dirty) << "entry " << i
                                << ": oracle dirty, incremental clean";
      }
    }
  }

  /// The translated view of every block must read its original contents on
  /// both machines — movement may never lose or misplace a payload.
  void CheckPayloads() {
    for (BlockNo b = 0; b < kBlocks; ++b) {
      const SectorNo origin = incr_.OriginalOf(b);
      ASSERT_EQ(origin, full_.OriginalOf(b));
      const SectorNo il =
          incr_.driver->block_table().Lookup(origin).value_or(origin);
      const SectorNo fl =
          full_.driver->block_table().Lookup(origin).value_or(origin);
      for (std::int32_t k = 0; k < kBlockSectors; ++k) {
        const std::uint64_t want =
            StampTag(b) + static_cast<std::uint64_t>(k);
        ASSERT_EQ(incr_.disk->ReadPayload(il + k), want)
            << "block " << b << " sector " << k << " (incremental)";
        ASSERT_EQ(full_.disk->ReadPayload(fl + k), want)
            << "block " << b << " sector " << k << " (full rebuild)";
      }
    }
  }

  Instance incr_;
  Instance full_;
  std::vector<BlockNo> hot_;
};

TEST_P(ArrangerDiffTest, BitIdenticalAcrossPassesAndFaults) {
  Rng rng(GetParam());
  // Media defects sit on never-hot blocks: arrangement never touches them,
  // so both machines hit them through identical day traffic only. Blocks
  // 49/51 are permanently bad, 53 is a marginal sector that heals within
  // the driver's retry budget.
  fault::FaultPlan plan;
  plan.media.push_back(fault::MediaFault{49 * kBlockSectors + 3, 2,
                                         /*persistent=*/true, 1, 0});
  plan.media.push_back(fault::MediaFault{51 * kBlockSectors + 9, 1,
                                         /*persistent=*/true, 1, 0});
  plan.media.push_back(fault::MediaFault{53 * kBlockSectors, 1,
                                         /*persistent=*/false, 2, 0});
  Start(plan);

  for (int pass = 0; pass < 8; ++pass) {
    RunDay(rng, 120);
    DriftHotSet(rng);
    const std::vector<HotBlock> ranked = Ranked();
    const auto ri = incr_.arranger->Rearrange(*incr_.driver, ranked);
    const auto rf = full_.arranger->Rearrange(*full_.driver, ranked);
    ASSERT_TRUE(ri.ok()) << ri.status().ToString();
    ASSERT_TRUE(rf.ok()) << rf.status().ToString();
    EXPECT_FALSE(ri->halted);
    EXPECT_FALSE(rf->halted);
    EXPECT_EQ(ri->aborted, 0);
    EXPECT_EQ(ri->skipped, 0);
    // Incremental accounting must explain the whole post-pass table and
    // keep the legacy aliases coherent.
    EXPECT_EQ(ri->kept + ri->shuffled + ri->admitted,
              incr_.driver->block_table().size());
    EXPECT_EQ(ri->cleaned, ri->evicted);
    EXPECT_EQ(ri->copied, ri->admitted);
    CheckConverged();
    CheckPayloads();
    SyncBarrier();
  }

  // One more full day after the last barrier: translation behaviour over
  // the final layout is bit-identical too.
  RunDay(rng, 150);
}

TEST_P(ArrangerDiffTest, ConvergesAfterCrashMidPass) {
  Rng rng(GetParam() * 977 + 13);

  // Measure the attach cost once (identical for every instance of this
  // geometry), then plant a crash point a few operations into the first
  // arrangement pass of both machines.
  Instance probe;
  probe.Create(fault::FaultPlan{}, /*seed=*/1, /*incremental=*/true);
  const std::int64_t attach_ios = probe.disk->io_index();

  fault::FaultPlan plan;
  fault::CrashPoint cp;
  cp.at_io = attach_ios + 4 + static_cast<std::int64_t>(rng.NextBounded(24));
  plan.crashes.push_back(cp);
  Start(plan);

  // First pass from an empty table: twelve admits on each machine, far
  // more I/O than the crash point leaves — both die mid-pass.
  const std::vector<HotBlock> first = Ranked();
  const auto ri = incr_.arranger->Rearrange(*incr_.driver, first);
  const auto rf = full_.arranger->Rearrange(*full_.driver, first);
  ASSERT_TRUE(ri.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_TRUE(ri->halted);
  EXPECT_TRUE(rf->halted);
  EXPECT_TRUE(incr_.driver->halted());
  EXPECT_TRUE(full_.driver->halted());

  // Reboot both. Conservative recovery marks every surviving entry dirty;
  // the machines hold different partial layouts at this point.
  incr_.Rebuild(/*after_crash=*/true);
  full_.Rebuild(/*after_crash=*/true);
  CheckPayloads();  // no payload may be lost by the crash on either side

  // The next completed pass must converge both machines onto the same
  // layout regardless of where each one died.
  DriftHotSet(rng);
  const std::vector<HotBlock> second = Ranked();
  const auto ri2 = incr_.arranger->Rearrange(*incr_.driver, second);
  const auto rf2 = full_.arranger->Rearrange(*full_.driver, second);
  ASSERT_TRUE(ri2.ok());
  ASSERT_TRUE(rf2.ok());
  EXPECT_FALSE(ri2->halted);
  EXPECT_FALSE(rf2->halted);
  CheckConverged();
  CheckPayloads();
  SyncBarrier();
  RunDay(rng, 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrangerDiffTest,
                         ::testing::Values(7, 11, 19, 23, 42, 1993));

/// Regression for the cleaned-count over-report: a pass that dies mid-clean
/// must report the clean-outs that actually landed, not the whole table.
TEST(ArrangerCrashAccountingTest, CleanedCountsOnlyLandedRemovals) {
  const auto run_prefix = [](Instance& inst) {
    // Six admitted blocks, all dirtied by user writes, fully drained.
    std::vector<HotBlock> ranked;
    std::int64_t count = 1000;
    for (BlockNo b : {3, 7, 11, 19, 23, 31}) {
      ranked.push_back(HotBlock{BlockId{0, b}, count});
      count -= 10;
    }
    ASSERT_TRUE(inst.arranger->Rearrange(*inst.driver, ranked).ok());
    Micros t = inst.driver->now();
    for (BlockNo b : {3, 7, 11, 19, 23, 31}) {
      t += 1000;
      ASSERT_TRUE(
          inst.driver->SubmitBlock(0, b, sched::IoType::kWrite, t).ok());
    }
    inst.driver->Drain();
    ASSERT_EQ(inst.driver->block_table().size(), 6);
  };

  Instance probe;
  probe.Create(fault::FaultPlan{}, /*seed=*/1, /*incremental=*/false);
  run_prefix(probe);
  const std::int64_t prefix_ios = probe.disk->io_index();

  // Each dirty clean-out is a three-I/O chain; dying four operations in
  // leaves most of the table behind.
  fault::FaultPlan plan;
  fault::CrashPoint cp;
  cp.at_io = prefix_ios + 4;
  plan.crashes.push_back(cp);
  Instance inst;
  inst.Create(plan, /*seed=*/1, /*incremental=*/false);
  run_prefix(inst);

  const auto result = inst.arranger->Rearrange(*inst.driver, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->halted);
  EXPECT_EQ(result->cleaned, 6 - inst.driver->block_table().size());
  EXPECT_GE(result->cleaned, 1);
  EXPECT_LT(result->cleaned, 6);  // the old code claimed all six
}

/// A hot block straddling the hidden-region boundary reaches the planner
/// as ineligible: it is skipped, never shuffled, and never admitted.
TEST(ArrangerStraddlerTest, StraddlerFeedsPlannerAsSkipped) {
  // 34 sectors/track makes cylinders (136 sectors) misaligned with blocks:
  // the hidden region starts at 45 * 136 = 6120, and block 382 spans
  // virtual sectors 6112..6127 — across the boundary.
  auto disk =
      std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive(100, 4, 34));
  auto label = disk::DiskLabel::Rearranged(disk->geometry(), 10);
  ASSERT_TRUE(label.ok());
  ASSERT_TRUE(label->PartitionEvenly(1).ok());
  driver::DriverConfig config;
  config.block_table_capacity = 16;
  driver::InMemoryTableStore store;
  driver::AdaptiveDriver driver(disk.get(), std::move(*label), config,
                                &store);
  ASSERT_TRUE(driver.Attach().ok());

  OrganPipePolicy policy;
  BlockArranger arranger(&policy);  // incremental by default
  const auto first = arranger.Rearrange(
      driver, {HotBlock{BlockId{0, 3}, 1000}, HotBlock{BlockId{0, 5}, 990}});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->admitted, 2);

  // Same two blocks again, now outranked by the straddler.
  const auto second =
      arranger.Rearrange(driver, {HotBlock{BlockId{0, 382}, 2000},
                                  HotBlock{BlockId{0, 3}, 1000},
                                  HotBlock{BlockId{0, 5}, 990}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->skipped, 1);
  EXPECT_EQ(second->kept, 2);      // same ranks, same slots: untouched
  EXPECT_EQ(second->shuffled, 0);  // a straddler never becomes a shuffle
  EXPECT_EQ(second->admitted, 0);
  EXPECT_EQ(second->evicted, 0);
  EXPECT_EQ(driver.block_table().size(), 2);
  EXPECT_FALSE(driver.block_table().Lookup(6112).has_value());
}

}  // namespace
}  // namespace abr::placement
