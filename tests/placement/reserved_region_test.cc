#include "placement/reserved_region.h"

#include <gtest/gtest.h>

#include <set>

#include "disk/drive_spec.h"

namespace abr::placement {
namespace {

disk::Geometry SmallGeometry() {
  // 12 cylinders x 1 track x 8 sectors; blocks of 2 sectors -> 4 slots
  // per cylinder.
  disk::Geometry g;
  g.cylinders = 12;
  g.tracks_per_cylinder = 1;
  g.sectors_per_track = 8;
  g.rpm = 3600;
  g.bytes_per_sector = 512;
  return g;
}

TEST(ReservedRegionTest, SlotSectorsArePacked) {
  // Data starts at sector 32 (cylinder 4).
  ReservedRegion r(SmallGeometry(), 32, 12, 2);
  EXPECT_EQ(r.slot_count(), 12);
  EXPECT_EQ(r.SlotSector(0), 32);
  EXPECT_EQ(r.SlotSector(1), 34);
  EXPECT_EQ(r.SlotSector(11), 54);
}

TEST(ReservedRegionTest, SlotCylinders) {
  ReservedRegion r(SmallGeometry(), 32, 12, 2);
  EXPECT_EQ(r.SlotCylinder(0), 4);
  EXPECT_EQ(r.SlotCylinder(3), 4);
  EXPECT_EQ(r.SlotCylinder(4), 5);
  EXPECT_EQ(r.SlotCylinder(11), 6);
  EXPECT_EQ(r.cylinders().size(), 3u);
}

TEST(ReservedRegionTest, SlotsOfCylinder) {
  ReservedRegion r(SmallGeometry(), 32, 12, 2);
  EXPECT_EQ(r.SlotsOfCylinder(4), (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.SlotsOfCylinder(5), (std::vector<std::int32_t>{4, 5, 6, 7}));
  EXPECT_TRUE(r.SlotsOfCylinder(99).empty());
}

TEST(ReservedRegionTest, OrganPipeCylinderOrderCenterOut) {
  ReservedRegion r(SmallGeometry(), 32, 12, 2);  // cylinders 4, 5, 6
  EXPECT_EQ(r.OrganPipeCylinderOrder(),
            (std::vector<Cylinder>{5, 6, 4}));
}

TEST(ReservedRegionTest, OrganPipeCylinderOrderAlternates) {
  // 5 cylinders of slots: 4..8; center = 6, then 7, 5, 8, 4.
  ReservedRegion r(SmallGeometry(), 32, 20, 2);
  EXPECT_EQ(r.OrganPipeCylinderOrder(),
            (std::vector<Cylinder>{6, 7, 5, 8, 4}));
}

TEST(ReservedRegionTest, OrganPipeSlotOrderCoversAllSlotsOnce) {
  ReservedRegion r(SmallGeometry(), 32, 20, 2);
  const std::vector<std::int32_t> order = r.OrganPipeSlotOrder();
  EXPECT_EQ(order.size(), 20u);
  std::set<std::int32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(ReservedRegionTest, OrganPipeSlotOrderCenterFirst) {
  ReservedRegion r(SmallGeometry(), 32, 12, 2);
  const std::vector<std::int32_t> order = r.OrganPipeSlotOrder();
  // Center cylinder 5 holds slots 4..7, which come first.
  EXPECT_EQ(std::vector<std::int32_t>(order.begin(), order.begin() + 4),
            (std::vector<std::int32_t>{4, 5, 6, 7}));
}

TEST(ReservedRegionTest, SlotStraddlingCylinderCountedOnStart) {
  // 3-sector blocks in 8-sector cylinders straddle; the slot belongs to
  // the cylinder its first sector is on.
  ReservedRegion r(SmallGeometry(), 32, 5, 3);
  EXPECT_EQ(r.SlotCylinder(0), 4);  // 32..34
  EXPECT_EQ(r.SlotCylinder(1), 4);  // 35..37
  EXPECT_EQ(r.SlotCylinder(2), 4);  // 38..40 (straddles into cyl 5)
  EXPECT_EQ(r.SlotCylinder(3), 5);  // 41..43
}

TEST(ReservedRegionTest, EmptyRegion) {
  ReservedRegion r(SmallGeometry(), 32, 0, 2);
  EXPECT_EQ(r.slot_count(), 0);
  EXPECT_TRUE(r.OrganPipeSlotOrder().empty());
  EXPECT_TRUE(r.OrganPipeCylinderOrder().empty());
}

}  // namespace
}  // namespace abr::placement
