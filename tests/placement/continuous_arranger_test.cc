// Tests for the continuous cost-bounded arranger: unit coverage of the
// move-utility economics and the online threshold, then a randomized
// differential test of the suspend/resume executor — one machine's clock
// is chopped into arbitrary small AdvanceTo() increments under traffic
// (so the open plan suspends and resumes at arbitrary points), the other
// runs the identical day uninterrupted, and both must land bit-identical
// final mapping sets and payload stamps. The executor's progress may only
// depend on simulated event times, never on how the caller slices them.

#include "placement/continuous_arranger.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "disk/drive_spec.h"
#include "driver/adaptive_driver.h"
#include "placement/arranger.h"
#include "placement/move_utility.h"
#include "placement/policy.h"
#include "util/rng.h"

namespace abr::placement {
namespace {

using analyzer::BlockId;
using analyzer::HotBlock;

constexpr std::int32_t kBlockSectors = 16;
constexpr BlockNo kHotPool = 48;  // hot sets are drawn from [0, kHotPool)
constexpr BlockNo kBlocks = 56;   // day traffic spans [0, kBlocks)

std::uint64_t StampTag(BlockNo b) {
  return 0xC0000000ull + static_cast<std::uint64_t>(b) * 0x100;
}

// --- Move-utility economics ------------------------------------------------

class MoveUtilityModelTest : public ::testing::Test {
 protected:
  MoveUtilityModelTest()
      : spec_(disk::DriveSpec::TestDrive()),
        model_(&spec_.seek_model, /*center=*/4) {}

  disk::DriveSpec spec_;
  MoveUtilityModel model_;
};

TEST_F(MoveUtilityModelTest, SavingsGrowWithDistanceFromCenter) {
  EXPECT_EQ(model_.SavingsPerReference(4), 0);  // already at the center
  const Micros near = model_.SavingsPerReference(8);
  const Micros far = model_.SavingsPerReference(60);
  EXPECT_GT(near, 0);
  EXPECT_GT(far, near);
  // Distances clamp at the seek model's max stroke.
  EXPECT_EQ(model_.SavingsPerReference(10000),
            spec_.seek_model.TimeFor(spec_.seek_model.max_distance()));
}

TEST_F(MoveUtilityModelTest, ShuffleCostChargesTheShortHop) {
  // A one-cylinder reshuffle inside the region must price far below a
  // cross-disk copy chain — otherwise the threshold rejects every rank
  // reordering the drift pays for.
  const Micros shuffle = model_.ShuffleCost(3, 4, 5);
  const Micros copy = model_.MoveCost(3);
  EXPECT_GT(shuffle, 0);
  EXPECT_LT(shuffle, copy);
  // Equal-cylinder shuffles still charge a minimal hop (rotation is real).
  EXPECT_EQ(model_.ShuffleCost(3, 4, 4), model_.ShuffleCost(3, 4, 5));
  // The hop is symmetric and grows with distance.
  EXPECT_EQ(model_.ShuffleCost(3, 2, 7), model_.ShuffleCost(3, 7, 2));
  EXPECT_GT(model_.ShuffleCost(3, 0, 9), model_.ShuffleCost(3, 4, 5));
}

TEST_F(MoveUtilityModelTest, AdmitShuffleOnlyBuysInwardMoves) {
  // Outward or equal-distance moves save nothing — never admitted, at any
  // reference count.
  EXPECT_FALSE(model_.AdmitShuffle(1 << 30, 5, 6, 1.0, 3));
  EXPECT_FALSE(model_.AdmitShuffle(1 << 30, 2, 6, 1.0, 3));  // |2-4| == |6-4|
  // An inward move is admitted once the references pay for the hop.
  EXPECT_TRUE(model_.AdmitShuffle(1 << 20, 9, 4, 1.0, 3));
  EXPECT_FALSE(model_.AdmitShuffle(0, 9, 4, 1.0, 3));
}

TEST_F(MoveUtilityModelTest, AdmitCopyScalesWithThresholdAndRefs) {
  const Cylinder home = 40;
  // Find the marginal reference count at threshold 1.0, then check the
  // admission boundary moves with the threshold.
  const double cost = static_cast<double>(model_.MoveCost(3));
  const double per_ref = static_cast<double>(model_.SavingsPerReference(home));
  const std::int64_t marginal =
      static_cast<std::int64_t>(cost / per_ref) + 1;
  EXPECT_TRUE(model_.AdmitCopy(marginal, home, 1.0, 3));
  EXPECT_FALSE(model_.AdmitCopy(marginal - 1, home, 1.0, 3) &&
               model_.AdmitCopy(marginal - 2, home, 1.0, 3));
  EXPECT_FALSE(model_.AdmitCopy(marginal, home, 4.0, 3));
  EXPECT_TRUE(model_.AdmitCopy(marginal * 4 + 1, home, 4.0, 3));
  EXPECT_FALSE(model_.AdmitCopy(0, home, 1.0, 3));
}

TEST(UtilityThresholdTest, RaisesWhenIdleTimeFellShort) {
  UtilityThreshold thr{MoveUtilityConfig{}};
  EXPECT_DOUBLE_EQ(thr.value(), 1.0);
  thr.Update(/*admitted=*/10, /*executed=*/4, /*rejected=*/0);
  EXPECT_DOUBLE_EQ(thr.value(), 2.0);
  thr.Update(10, 0, 0);
  EXPECT_DOUBLE_EQ(thr.value(), 4.0);
}

TEST(UtilityThresholdTest, LowersOnlyAfterFinishingWithRejects) {
  UtilityThreshold thr{MoveUtilityConfig{}};
  thr.Update(10, 0, 0);
  thr.Update(10, 0, 0);
  EXPECT_DOUBLE_EQ(thr.value(), 4.0);
  // Finished completely but nothing was priced out: deadband, hold.
  thr.Update(10, 10, 0);
  EXPECT_DOUBLE_EQ(thr.value(), 4.0);
  // Finished with candidates left on the table: there was budget to spare.
  thr.Update(10, 10, 3);
  EXPECT_DOUBLE_EQ(thr.value(), 2.0);
  // Nearly finished (above the low-water mark): deadband again.
  thr.Update(10, 9, 3);
  EXPECT_DOUBLE_EQ(thr.value(), 2.0);
}

TEST(UtilityThresholdTest, ClampsAtBreakEvenFloorAndCeiling) {
  MoveUtilityConfig config;
  UtilityThreshold thr{config};
  // The floor is break-even: finishing with rejects forever never drops
  // the bar below 1.0 (a cheaper move would cost more than it saves).
  for (int i = 0; i < 8; ++i) thr.Update(10, 10, 5);
  EXPECT_DOUBLE_EQ(thr.value(), config.min_threshold);
  for (int i = 0; i < 32; ++i) thr.Update(10, 0, 0);
  EXPECT_DOUBLE_EQ(thr.value(), config.max_threshold);
}

// --- Executor differential -------------------------------------------------

/// One machine: disk + store + driver + continuous arranger wired in as
/// the driver's idle sink.
struct Machine {
  std::unique_ptr<disk::Disk> disk;
  driver::InMemoryTableStore store;
  std::unique_ptr<driver::AdaptiveDriver> driver;
  OrganPipePolicy policy;
  std::unique_ptr<ContinuousArranger> arranger;

  void Create() {
    disk = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    auto label = disk::DiskLabel::Rearranged(disk->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver::DriverConfig config;
    config.block_table_capacity = 16;
    driver = std::make_unique<driver::AdaptiveDriver>(
        disk.get(), std::move(*label), config, &store);
    ASSERT_TRUE(driver->Attach().ok());
    arranger = std::make_unique<ContinuousArranger>(&policy);
    driver->set_idle_sink(arranger.get());
    for (BlockNo b = 0; b < kBlocks; ++b) {
      const SectorNo start = Original(b);
      for (std::int32_t k = 0; k < kBlockSectors; ++k) {
        disk->WritePayload(start + k,
                           StampTag(b) + static_cast<std::uint64_t>(k));
      }
    }
  }

  SectorNo Original(BlockNo b) const {
    const auto extents =
        driver->MapVirtualExtent(b * kBlockSectors, kBlockSectors);
    EXPECT_EQ(extents.size(), 1u);
    return extents[0].sector;
  }
};

std::vector<std::pair<SectorNo, SectorNo>> MappingSet(const Machine& m) {
  std::vector<std::pair<SectorNo, SectorNo>> out;
  for (const driver::BlockTableEntry& e : m.driver->block_table().entries()) {
    out.emplace_back(e.original, e.relocated);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The translated view of every block must still read its original stamp
/// — suspension and resumption may never lose or misplace a payload.
void CheckPayloads(const Machine& m) {
  for (BlockNo b = 0; b < kBlocks; ++b) {
    const SectorNo origin = m.Original(b);
    const SectorNo at = m.driver->block_table().Lookup(origin).value_or(origin);
    for (std::int32_t k = 0; k < kBlockSectors; ++k) {
      ASSERT_EQ(m.disk->ReadPayload(at + k),
                StampTag(b) + static_cast<std::uint64_t>(k))
          << "block " << b << " sector " << k;
    }
  }
}

std::vector<HotBlock> Ranked(const std::vector<BlockNo>& hot) {
  std::vector<HotBlock> ranked;
  std::int64_t count = 1 << 20;
  for (BlockNo b : hot) {
    ranked.push_back(HotBlock{BlockId{0, b}, count});
    count -= 13;
  }
  return ranked;
}

class ContinuousArrangerDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContinuousArrangerDiffTest, ChoppedClockMatchesUninterruptedRun) {
  Rng rng(GetParam());
  Machine chop;      // clock advanced in arbitrary small increments
  Machine straight;  // same day, advanced in single strides
  chop.Create();
  straight.Create();

  std::vector<BlockNo> hot;
  for (BlockNo b = 0; b < 12; ++b) hot.push_back(b);

  for (int day = 0; day < 5; ++day) {
    const std::vector<HotBlock> ranked = Ranked(hot);
    ASSERT_TRUE(chop.arranger->OpenPlan(*chop.driver, ranked).ok());
    ASSERT_TRUE(straight.arranger->OpenPlan(*straight.driver, ranked).ok());

    // Identical arrival schedule with real idle gaps (a TestDrive request
    // costs ~15-25 ms of service, so 5-35 ms gaps leave idle windows the
    // executor can spend). The chopped machine additionally advances its
    // clock to each arrival through random small steps, suspending and
    // resuming the open plan at arbitrary points along the way.
    Micros t = std::max(chop.driver->now(), straight.driver->now());
    for (int step = 0; step < 60; ++step) {
      t += 5000 + static_cast<Micros>(rng.NextBounded(30000));
      const BlockNo b = static_cast<BlockNo>(rng.NextBounded(kBlocks));
      const sched::IoType type = rng.NextBernoulli(0.3)
                                     ? sched::IoType::kWrite
                                     : sched::IoType::kRead;
      while (chop.driver->now() < t) {
        const Micros inc = 1 + static_cast<Micros>(rng.NextBounded(8000));
        chop.driver->AdvanceTo(std::min<Micros>(t, chop.driver->now() + inc));
      }
      ASSERT_TRUE(chop.driver->SubmitBlock(0, b, type, t).ok());
      ASSERT_TRUE(straight.driver->SubmitBlock(0, b, type, t).ok());
    }

    // A generous idle tail: both plans must drain completely, one through
    // many tiny windows, one through a single wide-open horizon.
    const Micros end =
        std::max(chop.driver->now(), straight.driver->now()) + 5'000'000;
    while (chop.driver->now() < end) {
      const Micros inc = 1 + static_cast<Micros>(rng.NextBounded(40000));
      chop.driver->AdvanceTo(std::min<Micros>(end, chop.driver->now() + inc));
    }
    straight.driver->AdvanceTo(end);
    chop.driver->Drain();
    straight.driver->Drain();

    const ArrangeResult rc = chop.arranger->CloseDay();
    const ArrangeResult rs = straight.arranger->CloseDay();
    ASSERT_FALSE(rc.halted);
    ASSERT_FALSE(rs.halted);
    EXPECT_EQ(rc.aborted, 0) << "day " << day;
    EXPECT_EQ(rs.aborted, 0) << "day " << day;
    // With the idle tail both plans execute fully; what remains deferred
    // is exactly the threshold-rejected candidates, identical by design.
    EXPECT_EQ(rc.deferred, rs.deferred) << "day " << day;
    EXPECT_EQ(rc.admitted, rs.admitted) << "day " << day;
    EXPECT_EQ(rc.shuffled, rs.shuffled) << "day " << day;
    EXPECT_EQ(rc.evicted, rs.evicted) << "day " << day;
    EXPECT_DOUBLE_EQ(chop.arranger->threshold(),
                     straight.arranger->threshold());

    ASSERT_EQ(MappingSet(chop), MappingSet(straight)) << "day " << day;
    CheckPayloads(chop);
    CheckPayloads(straight);

    // The chopped machine really did suspend mid-plan at least once over
    // the run (otherwise the test proves nothing).
    if (day == 0) {
      EXPECT_GT(chop.arranger->idle_windows(), 0);
    }

    // Drift the hot set for tomorrow: a few replacements plus a shuffle.
    for (int n = 0; n < 3; ++n) {
      BlockNo repl;
      do {
        repl = static_cast<BlockNo>(rng.NextBounded(kHotPool));
      } while (std::find(hot.begin(), hot.end(), repl) != hot.end());
      hot[rng.NextBounded(hot.size())] = repl;
    }
    for (std::size_t i = hot.size(); i > 1; --i) {
      std::swap(hot[i - 1], hot[rng.NextBounded(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuousArrangerDiffTest,
                         ::testing::Values(1u, 17u, 1993u, 0xABCDu));

// --- Parity and preemption -------------------------------------------------

TEST(ContinuousArrangerTest, FullIdleMatchesBatchArrangerOnFreshTable) {
  // From an empty table every candidate is a copy-in and every copy-in
  // clears the break-even threshold at these reference counts, so a day
  // of pure idle must land exactly the batch arranger's layout.
  Machine cont;
  cont.Create();
  Machine batch;
  batch.Create();
  batch.driver->set_idle_sink(nullptr);
  BlockArranger oracle(&batch.policy);

  std::vector<BlockNo> hot;
  for (BlockNo b = 0; b < 12; ++b) hot.push_back(b * 3);
  const std::vector<HotBlock> ranked = Ranked(hot);

  ASSERT_TRUE(cont.arranger->OpenPlan(*cont.driver, ranked).ok());
  cont.driver->AdvanceTo(cont.driver->now() + 5'000'000);
  cont.driver->Drain();
  const ArrangeResult rc = cont.arranger->CloseDay();
  const auto rb = oracle.Rearrange(*batch.driver, ranked);
  ASSERT_TRUE(rb.ok());

  EXPECT_EQ(rc.deferred, 0);
  EXPECT_EQ(rc.admitted, rb->copied);
  EXPECT_EQ(MappingSet(cont), MappingSet(batch));
  CheckPayloads(cont);
}

TEST(ContinuousArrangerTest, ArrivalSuspendsInFlightPlanWithoutAborting) {
  Machine m;
  m.Create();
  std::vector<BlockNo> hot;
  for (BlockNo b = 0; b < 12; ++b) hot.push_back(b);
  ASSERT_TRUE(m.arranger->OpenPlan(*m.driver, Ranked(hot)).ok());

  // Arrivals spaced tighter than a move chain's duration: the pre-advance
  // to each arrival opens an idle window, the window issues a chain, and
  // the arrival lands while it is still in flight — the plan must suspend
  // (preemption counted), never abort.
  Micros t = m.driver->now();
  for (int step = 0; step < 12; ++step) {
    t += 15000;
    ASSERT_TRUE(m.driver
                    ->SubmitBlock(0, static_cast<BlockNo>(step % kBlocks),
                                  sched::IoType::kRead, t)
                    .ok());
  }
  m.driver->AdvanceTo(t + 5'000'000);
  m.driver->Drain();
  EXPECT_GT(m.arranger->preemptions(), 0);

  const ArrangeResult r = m.arranger->CloseDay();
  EXPECT_EQ(r.aborted, 0);
  EXPECT_EQ(r.deferred, 0);  // the idle tail finished the suspended plan
  EXPECT_EQ(r.admitted, 12);
  CheckPayloads(m);
}

TEST(ContinuousArrangerTest, ThresholdPricesOutColdCandidates) {
  // Hot head with real traffic behind it, ice-cold tail: the tail's
  // expected savings cannot pay for its copy chains, so the plan admits
  // only the head and reports the tail as deferred.
  Machine m;
  m.Create();
  std::vector<HotBlock> ranked;
  for (BlockNo b = 0; b < 6; ++b) {
    ranked.push_back(HotBlock{BlockId{0, b}, 1 << 20});
  }
  for (BlockNo b = 6; b < 12; ++b) {
    ranked.push_back(HotBlock{BlockId{0, b}, 1});
  }
  ASSERT_TRUE(m.arranger->OpenPlan(*m.driver, ranked).ok());
  m.driver->AdvanceTo(m.driver->now() + 5'000'000);
  m.driver->Drain();
  const ArrangeResult r = m.arranger->CloseDay();
  EXPECT_EQ(r.admitted, 6);
  EXPECT_EQ(r.deferred, 6);
  EXPECT_EQ(static_cast<std::int32_t>(m.driver->block_table().size()), 6);
}

}  // namespace
}  // namespace abr::placement
