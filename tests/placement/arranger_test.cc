#include "placement/arranger.h"

#include <gtest/gtest.h>

#include <memory>

#include "disk/drive_spec.h"

namespace abr::placement {
namespace {

using analyzer::BlockId;
using analyzer::HotBlock;

class ArrangerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver::DriverConfig config;
    config.block_table_capacity = 16;
    driver_ = std::make_unique<driver::AdaptiveDriver>(
        disk_.get(), std::move(*label), config, &store_);
    ASSERT_TRUE(driver_->Attach().ok());
  }

  std::vector<HotBlock> Ranked(std::initializer_list<BlockNo> blocks) {
    std::vector<HotBlock> out;
    std::int64_t count = 1000;
    for (BlockNo b : blocks) {
      out.push_back(HotBlock{BlockId{0, b}, count});
      count -= 10;
    }
    return out;
  }

  std::unique_ptr<disk::Disk> disk_;
  driver::InMemoryTableStore store_;
  std::unique_ptr<driver::AdaptiveDriver> driver_;
  OrganPipePolicy organ_pipe_;
};

TEST_F(ArrangerTest, OriginalSectorTranslation) {
  auto sector = BlockArranger::OriginalSector(*driver_, BlockId{0, 7});
  ASSERT_TRUE(sector.ok());
  EXPECT_EQ(*sector, 7 * 16);
  // Blocks past the hidden region shift by its size.
  auto late = BlockArranger::OriginalSector(*driver_, BlockId{0, 700});
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(*late, 700 * 16 + 10 * 128);
}

TEST_F(ArrangerTest, OriginalSectorValidation) {
  EXPECT_EQ(BlockArranger::OriginalSector(*driver_, BlockId{9, 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BlockArranger::OriginalSector(*driver_, BlockId{0, 1 << 20})
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(ArrangerTest, RearrangeCopiesHotBlocks) {
  BlockArranger arranger(&organ_pipe_);
  auto result = arranger.Rearrange(*driver_, Ranked({3, 9, 27}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copied, 3);
  EXPECT_EQ(result->cleaned, 0);
  EXPECT_EQ(result->skipped, 0);
  EXPECT_GT(result->internal_ios, 0);
  EXPECT_EQ(driver_->block_table().size(), 3);
  for (BlockNo b : {3, 9, 27}) {
    EXPECT_TRUE(driver_->block_table().Lookup(b * 16).has_value());
  }
}

TEST_F(ArrangerTest, RearrangePreservesData) {
  for (int i = 0; i < 16; ++i) {
    disk_->WritePayload(3 * 16 + i, 0xAA00 + static_cast<std::uint64_t>(i));
  }
  BlockArranger arranger(&organ_pipe_);
  ASSERT_TRUE(arranger.Rearrange(*driver_, Ranked({3})).ok());
  const SectorNo target = driver_->block_table().Lookup(3 * 16).value();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(disk_->ReadPayload(target + i),
              0xAA00 + static_cast<std::uint64_t>(i));
  }
}

TEST_F(ArrangerTest, SecondRearrangeCleansFirst) {
  BlockArranger arranger(&organ_pipe_);
  ASSERT_TRUE(arranger.Rearrange(*driver_, Ranked({3, 9})).ok());
  auto result = arranger.Rearrange(*driver_, Ranked({27, 40}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, 2);
  EXPECT_EQ(result->copied, 2);
  EXPECT_EQ(driver_->block_table().size(), 2);
  EXPECT_FALSE(driver_->block_table().Lookup(3 * 16).has_value());
  EXPECT_TRUE(driver_->block_table().Lookup(27 * 16).has_value());
}

TEST_F(ArrangerTest, HotterBlocksGetMoreCentralSlots) {
  BlockArranger arranger(&organ_pipe_);
  ASSERT_TRUE(arranger.Rearrange(*driver_, Ranked({5, 6, 7, 8})).ok());
  // Organ-pipe: rank 0 lands on the organ-pipe-first slot.
  const ReservedRegion region = ReservedRegion::FromDriver(*driver_);
  const std::vector<std::int32_t> order = region.OrganPipeSlotOrder();
  EXPECT_EQ(driver_->block_table().Lookup(5 * 16).value(),
            region.SlotSector(order[0]));
  EXPECT_EQ(driver_->block_table().Lookup(6 * 16).value(),
            region.SlotSector(order[1]));
}

TEST_F(ArrangerTest, TruncatesToCapacity) {
  BlockArranger arranger(&organ_pipe_);
  std::vector<HotBlock> ranked;
  for (BlockNo b = 0; b < 30; ++b) {
    ranked.push_back(HotBlock{BlockId{0, b}, 1000 - b});
  }
  auto result = arranger.Rearrange(*driver_, ranked);
  ASSERT_TRUE(result.ok());
  // Table capacity (and thus slot count) is 16.
  EXPECT_EQ(result->copied, 16);
  EXPECT_EQ(driver_->block_table().size(), 16);
}

TEST_F(ArrangerTest, SkipsOutOfRangeBlocks) {
  BlockArranger arranger(&organ_pipe_);
  std::vector<HotBlock> ranked = Ranked({3});
  ranked.push_back(HotBlock{BlockId{0, 1 << 20}, 5});  // bogus block
  auto result = arranger.Rearrange(*driver_, ranked);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copied, 1);
  EXPECT_EQ(result->skipped, 1);
}

TEST_F(ArrangerTest, RequiresRearrangedDisk) {
  disk::Disk plain_disk(disk::DriveSpec::TestDrive());
  disk::DiskLabel label = disk::DiskLabel::Plain(plain_disk.geometry());
  driver::AdaptiveDriver plain_driver(&plain_disk, label,
                                      driver::DriverConfig{}, nullptr);
  ASSERT_TRUE(plain_driver.Attach().ok());
  BlockArranger arranger(&organ_pipe_);
  EXPECT_EQ(arranger.Rearrange(plain_driver, Ranked({1})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ArrangerTest, StraddlingBlocksSkipped) {
  // Rebuild with a geometry whose cylinders are not block aligned.
  disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive(100, 4, 34));
  auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
  ASSERT_TRUE(label.ok());
  ASSERT_TRUE(label->PartitionEvenly(1).ok());
  driver::DriverConfig config;
  config.block_table_capacity = 16;
  store_ = driver::InMemoryTableStore();
  driver_ = std::make_unique<driver::AdaptiveDriver>(
      disk_.get(), std::move(*label), config, &store_);
  ASSERT_TRUE(driver_->Attach().ok());

  // Block 382 straddles the hidden-region boundary (45 * 136 = 6120).
  BlockArranger arranger(&organ_pipe_);
  auto result = arranger.Rearrange(*driver_, Ranked({382, 3}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->skipped, 1);
  EXPECT_EQ(result->copied, 1);
  EXPECT_TRUE(driver_->block_table().Lookup(3 * 16).has_value());
}

TEST_F(ArrangerTest, EmptyHotListCleansOnly) {
  BlockArranger arranger(&organ_pipe_);
  ASSERT_TRUE(arranger.Rearrange(*driver_, Ranked({3})).ok());
  auto result = arranger.Rearrange(*driver_, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, 1);
  EXPECT_EQ(result->copied, 0);
  EXPECT_EQ(driver_->block_table().size(), 0);
}

}  // namespace
}  // namespace abr::placement
