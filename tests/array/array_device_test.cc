#include "array/array_device.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace abr::array {
namespace {

ArrayConfig SmallConfig(RaidLevel level, std::int32_t members) {
  ArrayConfig c;
  c.level = level;
  c.members = members;
  c.threads = 1;
  c.chunk_blocks = 4;
  c.epoch = 50 * kMillisecond;
  c.drive = disk::DriveSpec::TestDrive(60, 2, 32);
  c.reserved_cylinders = 8;
  c.rearrange_blocks = 16;
  c.spare_slots = 4;
  c.resync_granule_blocks = 4;
  c.driver.block_size_bytes = 8192;
  c.driver.request_monitor_capacity = 1 << 12;
  return c;
}

struct CountingSink : ArrayCompletionSink {
  std::map<std::int32_t, std::int64_t> writes;
  std::map<std::int32_t, std::int64_t> reads;
  void OnMemberIoComplete(std::int32_t member,
                          const sim::CompletedIo& done) override {
    if (done.request.internal) return;
    if (done.request.type == sched::IoType::kWrite) {
      ++writes[member];
    } else {
      ++reads[member];
    }
  }
  std::int64_t total_reads() const {
    std::int64_t n = 0;
    for (const auto& [m, c] : reads) n += c;
    return n;
  }
};

workload::TraceRecord Rec(Micros t, BlockNo block, sched::IoType type) {
  return workload::TraceRecord{t, 0, block, type};
}

std::vector<std::pair<SectorNo, SectorNo>> MappingSet(
    const ArrayDevice& dev, std::int32_t member) {
  std::vector<std::pair<SectorNo, SectorNo>> set;
  for (const auto& e : dev.member_driver(member).block_table().entries()) {
    set.emplace_back(e.original, e.relocated);
  }
  std::sort(set.begin(), set.end());
  return set;
}

TEST(ArrayDeviceTest, Raid0CapacityClampsToWholeChunks) {
  ArrayConfig c = SmallConfig(RaidLevel::kRaid0, 3);
  ArrayDevice dev(c);
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();
  ASSERT_GT(dev.member_blocks(), 0);
  const std::int64_t usable =
      (dev.member_blocks() / c.chunk_blocks) * c.chunk_blocks;
  EXPECT_EQ(dev.device_blocks(), usable * 3);
}

TEST(ArrayDeviceTest, Raid1CapacityIsOneMember) {
  ArrayDevice dev(SmallConfig(RaidLevel::kRaid1, 2));
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();
  EXPECT_EQ(dev.device_blocks(), dev.member_blocks());
}

TEST(ArrayDeviceTest, Raid1WritesFanOutReadsPickOneMember) {
  ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 3);
  CountingSink sink;
  ArrayDevice dev(c);
  dev.set_client_sink(&sink);
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();

  Micros t = 0;
  for (BlockNo b = 0; b < 10; ++b) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(dev.Submit(Rec(t, b, sched::IoType::kWrite)).ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  for (BlockNo b = 0; b < 10; ++b) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(dev.Submit(Rec(t, b, sched::IoType::kRead)).ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  ASSERT_TRUE(dev.Drain().ok());

  // Every member sees every write; the 10 reads land on exactly one
  // member each.
  for (std::int32_t m = 0; m < 3; ++m) {
    EXPECT_EQ(sink.writes[m], 10) << "member " << m;
  }
  EXPECT_EQ(sink.total_reads(), 10);
  EXPECT_EQ(dev.lost_requests(), 0);
  EXPECT_TRUE(dev.first_error().empty()) << dev.first_error();
}

TEST(ArrayDeviceTest, Raid1MirrorTablesStayInLockstepAfterRearrange) {
  ArrayDevice dev(SmallConfig(RaidLevel::kRaid1, 3));
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();

  // Skewed traffic so the ranked list is non-trivial.
  Micros t = 0;
  for (std::int32_t round = 0; round < 20; ++round) {
    for (BlockNo b = 0; b < 8; ++b) {
      t += kMillisecond;
      ASSERT_TRUE(dev
                      .Submit(Rec(t, b,
                                  (round + b) % 3 == 0
                                      ? sched::IoType::kWrite
                                      : sched::IoType::kRead))
                      .ok());
      ASSERT_TRUE(dev.AdvanceTo(t).ok());
    }
  }
  ASSERT_TRUE(dev.Drain().ok());
  StatusOr<placement::ArrangeResult> pass = dev.RearrangeAll();
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_GT(pass->copied + pass->kept, 0);

  const auto base = MappingSet(dev, 0);
  EXPECT_FALSE(base.empty());
  for (std::int32_t m = 1; m < 3; ++m) {
    EXPECT_EQ(MappingSet(dev, m), base) << "member " << m;
  }
  EXPECT_TRUE(dev.first_error().empty()) << dev.first_error();
}

TEST(ArrayDeviceTest, ResultsAreIdenticalForAnyThreadCount) {
  // The same workload against 1 worker thread and 3 must produce the same
  // clock and the same member tables — the epoch-barrier protocol promise.
  auto run = [](std::int32_t threads) {
    ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 3);
    c.threads = threads;
    auto dev = std::make_unique<ArrayDevice>(c);
    EXPECT_TRUE(dev->Start().ok()) << dev->first_error();
    Micros t = 0;
    for (std::int32_t round = 0; round < 15; ++round) {
      for (BlockNo b = 0; b < 12; ++b) {
        t += kMillisecond + b * 100;
        EXPECT_TRUE(
            dev->Submit(Rec(t, (b * 7) % dev->device_blocks(),
                            b % 2 == 0 ? sched::IoType::kWrite
                                       : sched::IoType::kRead))
                .ok());
        EXPECT_TRUE(dev->AdvanceTo(t).ok());
      }
    }
    EXPECT_TRUE(dev->Drain().ok());
    EXPECT_TRUE(dev->RearrangeAll().ok());
    EXPECT_TRUE(dev->Drain().ok());
    return dev;
  };

  auto a = run(1);
  auto b = run(3);
  EXPECT_EQ(a->now(), b->now());
  for (std::int32_t m = 0; m < 3; ++m) {
    EXPECT_EQ(MappingSet(*a, m), MappingSet(*b, m)) << "member " << m;
  }
}

TEST(ArrayDeviceTest, DegradedMirrorKeepsServingAndSkipsPasses) {
  ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 2);
  c.fault_plans.resize(2);
  fault::CrashPoint cp;
  cp.at_io = 50;
  c.fault_plans[1].crashes.push_back(cp);

  CountingSink sink;
  ArrayDevice dev(c);
  dev.set_client_sink(&sink);
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();

  Micros t = 0;
  for (std::int32_t i = 0; i < 120; ++i) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(
        dev.Submit(Rec(t, i % dev.device_blocks(), sched::IoType::kWrite))
            .ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  ASSERT_TRUE(dev.Drain().ok());

  ASSERT_EQ(dev.member_state(1), MemberState::kDead);
  EXPECT_TRUE(dev.degraded());
  EXPECT_FALSE(dev.failed());
  EXPECT_GT(dev.dirty_granules(1), 0);

  // Arrangement is deferred while degraded.
  ASSERT_TRUE(dev.RearrangeAll().ok());
  EXPECT_EQ(dev.passes_skipped_degraded(), 1);

  // Reads are still served — by the survivor.
  const std::int64_t reads_before = sink.total_reads();
  for (std::int32_t i = 0; i < 20; ++i) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(dev.Submit(Rec(t, i, sched::IoType::kRead)).ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  ASSERT_TRUE(dev.Drain().ok());
  EXPECT_EQ(sink.total_reads() - reads_before, 20);
  EXPECT_EQ(sink.reads[1], 0);
  EXPECT_EQ(dev.lost_requests(), 0);
  EXPECT_TRUE(dev.first_error().empty()) << dev.first_error();
}

TEST(ArrayDeviceTest, ResyncCopiesOnlyDirtyGranulesAndRestoresMirror) {
  ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 2);
  c.fault_plans.resize(2);
  fault::CrashPoint cp;
  cp.at_io = 30;
  c.fault_plans[1].crashes.push_back(cp);

  ArrayDevice dev(c);
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();

  Micros t = 0;
  for (std::int32_t i = 0; i < 60; ++i) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(
        dev.Submit(Rec(t, i % dev.device_blocks(), sched::IoType::kWrite))
            .ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  ASSERT_TRUE(dev.Drain().ok());
  ASSERT_EQ(dev.member_state(1), MemberState::kDead);

  // A few more writes while degraded: the divergence resync must heal.
  for (std::int32_t i = 0; i < 8; ++i) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(dev.Submit(Rec(t, i, sched::IoType::kWrite)).ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  ASSERT_TRUE(dev.Drain().ok());
  const std::int64_t dirty = dev.dirty_granules(1);
  ASSERT_GT(dirty, 0);

  ASSERT_TRUE(dev.ReattachMember(1).ok()) << dev.first_error();
  EXPECT_EQ(dev.member_state(1), MemberState::kResync);
  EXPECT_TRUE(dev.resync_active());

  std::int32_t spins = 0;
  while (dev.resync_active() && spins++ < 10000) {
    ASSERT_TRUE(dev.AdvanceTo(dev.now() + c.epoch).ok());
  }
  ASSERT_LT(spins, 10000) << "resync did not converge";

  EXPECT_EQ(dev.member_state(1), MemberState::kOnline);
  EXPECT_FALSE(dev.degraded());
  EXPECT_EQ(dev.resyncs_completed(), 1);
  EXPECT_EQ(dev.resync_granules_copied(), dirty);
  EXPECT_EQ(dev.dirty_granules(1), 0);

  // Only the divergent part of the platter moved: far fewer granules than
  // the whole member.
  const std::int64_t member_granules =
      dev.member_blocks() / c.resync_granule_blocks + 1;
  EXPECT_LT(dev.resync_granules_copied(), member_granules / 2);
  EXPECT_TRUE(dev.first_error().empty()) << dev.first_error();
}

TEST(ArrayDeviceTest, ScrubFindsPersistentErrorAndRemapsIntoSpare) {
  ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 2);
  c.scrub_batch = 8;
  c.fault_plans.resize(2);

  // Plant a persistent defect under a block the workload never touches;
  // only the scrubber will find it.
  ArrayDevice probe(c);
  ASSERT_TRUE(probe.Start().ok()) << probe.first_error();
  const disk::DiskLabel& label = probe.member_driver(0).label();
  const BlockNo cold = probe.device_blocks() - 2;
  const SectorNo vfirst =
      label.partitions()[0].first_sector + cold * probe.block_sectors();
  const SectorNo original = label.VirtualToPhysical(vfirst);

  fault::MediaFault bad;
  bad.first = original;
  bad.count = 1;
  bad.persistent = true;
  c.fault_plans[0].media.push_back(bad);

  ArrayDevice dev(c);
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();

  // Light foreground traffic on the first few blocks, then idle epochs for
  // the scrubber to sweep the cold remainder.
  Micros t = 0;
  for (std::int32_t i = 0; i < 10; ++i) {
    t += 2 * kMillisecond;
    ASSERT_TRUE(dev.Submit(Rec(t, i % 4, sched::IoType::kWrite)).ok());
    ASSERT_TRUE(dev.AdvanceTo(t).ok());
  }
  ASSERT_TRUE(dev.Drain().ok());

  std::int32_t epochs = 0;
  while (dev.spares_used() == 0 && epochs++ < 400) {
    ASSERT_TRUE(dev.AdvanceTo(dev.now() + c.epoch).ok());
  }
  ASSERT_GE(dev.spares_used(), 1) << "scrub never remapped the bad block";
  // The repair itself is an asynchronous move chain (spare write + table
  // save); run it to retirement before inspecting the tables.
  ASSERT_TRUE(dev.Drain().ok());
  EXPECT_GE(dev.MemberFaults(0).scrub_hits, 1);
  EXPECT_GE(dev.MemberFaults(0).remaps, 1);

  // The redirection is mirrored: both members now map the block into the
  // same reserved-area spare slot.
  for (std::int32_t m = 0; m < 2; ++m) {
    const auto mapped =
        dev.member_driver(m).block_table().Lookup(original);
    ASSERT_TRUE(mapped.has_value()) << "member " << m;
    EXPECT_TRUE(dev.member_driver(m).IsSpareSlot(*mapped)) << "member " << m;
    EXPECT_EQ(*mapped, dev.member_driver(0).SpareSlotSector(0));
  }
  EXPECT_TRUE(dev.first_error().empty()) << dev.first_error();
}

TEST(ArrayDeviceTest, RejectsBadConfigurations) {
  {
    ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 1);
    ArrayDevice dev(c);
    EXPECT_FALSE(dev.Start().ok());
  }
  {
    ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 2);
    c.threads = 2;
    CountingSink sink;
    ArrayDevice dev(c);
    dev.set_client_sink(&sink);
    EXPECT_FALSE(dev.Start().ok());
  }
  {
    ArrayConfig c = SmallConfig(RaidLevel::kRaid1, 2);
    c.fault_plans.resize(1);  // must be empty or one per member
    ArrayDevice dev(c);
    EXPECT_FALSE(dev.Start().ok());
  }
}

TEST(ArrayDeviceTest, Raid0HasNoReattach) {
  ArrayDevice dev(SmallConfig(RaidLevel::kRaid0, 3));
  ASSERT_TRUE(dev.Start().ok()) << dev.first_error();
  const Status s = dev.ReattachMember(1);
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace abr::array
