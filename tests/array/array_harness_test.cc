#include "array/array_harness.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace abr::array {
namespace {

ArrayHarnessConfig Base(std::uint64_t seed) {
  ArrayHarnessConfig c = ArrayHarnessConfig{}.Quick();
  c.seed = seed;
  return c;
}

TEST(ArrayCrashHarnessTest, UninterruptedTwinIsCleanAndDeterministic) {
  const ArrayHarnessConfig config = Base(7);
  const ArrayHarnessResult a = ArrayCrashHarness(config).Run();
  EXPECT_TRUE(a.ok()) << a.first_error;
  EXPECT_EQ(a.crashes, 0);
  EXPECT_EQ(a.lost_requests, 0);
  EXPECT_GT(a.writes_acked, 0);
  EXPECT_GT(a.reads_checked, 0);
  EXPECT_GT(a.arrange_passes, 0);

  const ArrayHarnessResult b = ArrayCrashHarness(config).Run();
  EXPECT_EQ(a.fingerprint_hash, b.fingerprint_hash);
  EXPECT_EQ(a.mapping_hash, b.mapping_hash);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.reads_checked, b.reads_checked);
}

// The ISSUE's acceptance gate: kill a mirror member at a sweep of seeded
// crash points — under phase traffic, inside arrangement passes, during
// table saves — reattach it, resync, and require the post-resync payload
// fingerprints and mapping sets to be bit-identical to the uninterrupted
// twin's. Any acked write the mirror dropped would diverge the hash.
TEST(ArrayCrashHarnessTest, KilledRunConvergesToUninterruptedTwin) {
  const std::uint64_t seed = 33;
  const ArrayHarnessResult twin = ArrayCrashHarness(Base(seed)).Run();
  ASSERT_TRUE(twin.ok()) << twin.first_error;

  const std::vector<std::int64_t> kill_points = {1,   3,   10,  25,  60, 90,
                                                 150, 250, 400, 600, 900};
  std::int32_t fired = 0;
  for (const std::int64_t at_io : kill_points) {
    ArrayHarnessConfig config = Base(seed);
    config.kill_member = 1;
    config.kill_at_io = at_io;
    const ArrayHarnessResult r = ArrayCrashHarness(config).Run();
    EXPECT_TRUE(r.ok()) << "kill_at_io=" << at_io << ": " << r.first_error;
    EXPECT_EQ(r.fingerprint_hash, twin.fingerprint_hash)
        << "kill_at_io=" << at_io;
    EXPECT_EQ(r.mapping_hash, twin.mapping_hash) << "kill_at_io=" << at_io;
    EXPECT_EQ(r.lost_requests, 0) << "kill_at_io=" << at_io;
    if (r.crashes > 0) {
      ++fired;
      EXPECT_EQ(r.crashes, 1) << "kill_at_io=" << at_io;
      EXPECT_EQ(r.resyncs_completed, 1) << "kill_at_io=" << at_io;
      EXPECT_GT(r.resync_granules_copied, 0) << "kill_at_io=" << at_io;
    }
  }
  // The sweep is only meaningful if most points actually fired.
  EXPECT_GE(fired, 8);
}

TEST(ArrayCrashHarnessTest, KilledRunItselfIsDeterministic) {
  ArrayHarnessConfig config = Base(91);
  config.kill_member = 0;
  config.kill_at_io = 40;
  const ArrayHarnessResult a = ArrayCrashHarness(config).Run();
  const ArrayHarnessResult b = ArrayCrashHarness(config).Run();
  EXPECT_TRUE(a.ok()) << a.first_error;
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.fingerprint_hash, b.fingerprint_hash);
  EXPECT_EQ(a.mapping_hash, b.mapping_hash);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.resync_granules_copied, b.resync_granules_copied);
}

TEST(ArrayCrashHarnessTest, ThreeWayMirrorSurvivesAKill) {
  ArrayHarnessConfig twin_config = Base(55);
  twin_config.members = 3;
  const ArrayHarnessResult twin = ArrayCrashHarness(twin_config).Run();
  ASSERT_TRUE(twin.ok()) << twin.first_error;

  ArrayHarnessConfig config = twin_config;
  config.kill_member = 2;
  config.kill_at_io = 60;
  const ArrayHarnessResult r = ArrayCrashHarness(config).Run();
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_EQ(r.crashes, 1);
  EXPECT_EQ(r.fingerprint_hash, twin.fingerprint_hash);
  EXPECT_EQ(r.mapping_hash, twin.mapping_hash);
}

}  // namespace
}  // namespace abr::array
