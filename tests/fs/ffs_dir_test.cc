#include <gtest/gtest.h>

#include <set>

#include "fs/ffs.h"

namespace abr::fs {
namespace {

FfsConfig SmallConfig() {
  FfsConfig c;
  c.total_blocks = 256;
  c.blocks_per_group = 64;
  c.inode_blocks_per_group = 2;
  c.block_size_bytes = 8192;
  c.dirent_size_bytes = 32;  // 256 entries per directory block
  return c;
}

TEST(FfsDirTest, RootExists) {
  Ffs fs(SmallConfig());
  EXPECT_TRUE(fs.IsDirectory(fs.root()));
  EXPECT_EQ(fs.ParentOf(fs.root()).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(FfsDirTest, CreateDirectoryUnderRoot) {
  Ffs fs(SmallConfig());
  auto dir = fs.CreateDirectory(kInvalidFile);
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(fs.IsDirectory(*dir));
  EXPECT_EQ(fs.ParentOf(*dir).value(), fs.root());
}

TEST(FfsDirTest, NestedDirectories) {
  Ffs fs(SmallConfig());
  auto a = fs.CreateDirectory(fs.root());
  ASSERT_TRUE(a.ok());
  auto b = fs.CreateDirectory(*a);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(fs.ParentOf(*b).value(), *a);
}

TEST(FfsDirTest, CreateFileInDirectoryInheritsGroup) {
  Ffs fs(SmallConfig());
  auto dir = fs.CreateDirectory(fs.root());
  ASSERT_TRUE(dir.ok());
  const std::int32_t dir_group = fs.FileGroup(*dir).value();
  auto f = fs.CreateFileIn(*dir);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(fs.FileGroup(*f).value(), dir_group);
  EXPECT_FALSE(fs.IsDirectory(*f));
  EXPECT_EQ(fs.ParentOf(*f).value(), *dir);
}

TEST(FfsDirTest, CreateFileInRejectsRegularFile) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(fs.CreateFileIn(*f).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs.CreateDirectory(*f).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FfsDirTest, DirectoriesSpreadAcrossGroups) {
  Ffs fs(SmallConfig());
  std::set<std::int32_t> groups;
  for (int i = 0; i < 8; ++i) {
    auto dir = fs.CreateDirectory(fs.root());
    ASSERT_TRUE(dir.ok());
    // Fill the directory a bit so the next one prefers another group.
    auto f = fs.CreateFileIn(*dir);
    ASSERT_TRUE(f.ok());
    for (int j = 0; j < 6; ++j) ASSERT_TRUE(fs.AppendBlock(*f).ok());
    groups.insert(fs.FileGroup(*dir).value());
  }
  EXPECT_GE(groups.size(), 3u);
}

TEST(FfsDirTest, LookupBlocksWalksThePath) {
  Ffs fs(SmallConfig());
  auto dir = fs.CreateDirectory(fs.root());
  ASSERT_TRUE(dir.ok());
  auto f = fs.CreateFileIn(*dir);
  ASSERT_TRUE(f.ok());
  auto blocks = fs.LookupBlocks(*f);
  ASSERT_TRUE(blocks.ok());
  // root inode, root entry block, dir inode, dir entry block, file inode.
  ASSERT_EQ(blocks->size(), 5u);
  EXPECT_EQ((*blocks)[0], fs.InodeBlock(fs.root()).value());
  EXPECT_EQ((*blocks)[2], fs.InodeBlock(*dir).value());
  EXPECT_EQ((*blocks)[4], fs.InodeBlock(*f).value());
}

TEST(FfsDirTest, LookupBlocksForRootChild) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile();
  ASSERT_TRUE(f.ok());
  auto blocks = fs.LookupBlocks(*f);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 3u);  // root inode, root entry block, file inode
}

TEST(FfsDirTest, LookupOfRootIsItsInode) {
  Ffs fs(SmallConfig());
  auto blocks = fs.LookupBlocks(fs.root());
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ((*blocks)[0], fs.InodeBlock(fs.root()).value());
}

TEST(FfsDirTest, DirectoryGrowsEntryBlocks) {
  FfsConfig config = SmallConfig();
  config.dirent_size_bytes = 2048;  // only 4 entries per block
  Ffs fs(config);
  auto dir = fs.CreateDirectory(fs.root());
  ASSERT_TRUE(dir.ok());
  std::vector<FileId> files;
  for (int i = 0; i < 6; ++i) {
    auto f = fs.CreateFileIn(*dir);
    ASSERT_TRUE(f.ok());
    files.push_back(*f);
  }
  // Entries 0..3 in directory block 0; 4..5 in block 1.
  EXPECT_EQ(fs.FileSize(*dir).value(), 2);
  auto b0 = fs.LookupBlocks(files[0]);
  auto b5 = fs.LookupBlocks(files[5]);
  ASSERT_TRUE(b0.ok());
  ASSERT_TRUE(b5.ok());
  // The entry block differs (second-to-last element of the lookup chain).
  EXPECT_NE((*b0)[b0->size() - 2], (*b5)[b5->size() - 2]);
}

TEST(FfsDirTest, DeleteUnlinksFromParent) {
  Ffs fs(SmallConfig());
  auto dir = fs.CreateDirectory(fs.root());
  ASSERT_TRUE(dir.ok());
  auto a = fs.CreateFileIn(*dir);
  auto b = fs.CreateFileIn(*dir);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs.DeleteFile(*a).ok());
  // b still resolves cleanly after the swap-remove fixed its entry index.
  EXPECT_TRUE(fs.LookupBlocks(*b).ok());
  ASSERT_TRUE(fs.DeleteFile(*b).ok());
  EXPECT_TRUE(fs.DeleteFile(*dir).ok());  // now empty
}

TEST(FfsDirTest, CannotDeleteNonEmptyDirectoryOrRoot) {
  Ffs fs(SmallConfig());
  auto dir = fs.CreateDirectory(fs.root());
  ASSERT_TRUE(dir.ok());
  auto f = fs.CreateFileIn(*dir);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(fs.DeleteFile(*dir).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fs.DeleteFile(fs.root()).code(), StatusCode::kInvalidArgument);
}

TEST(FfsDirTest, EntryIndexStableAcrossManyDeletes) {
  Ffs fs(SmallConfig());
  std::vector<FileId> files;
  for (int i = 0; i < 20; ++i) {
    auto f = fs.CreateFile();
    ASSERT_TRUE(f.ok());
    files.push_back(*f);
  }
  // Delete every other file; the survivors must all still resolve.
  for (int i = 0; i < 20; i += 2) ASSERT_TRUE(fs.DeleteFile(files[i]).ok());
  for (int i = 1; i < 20; i += 2) {
    EXPECT_TRUE(fs.LookupBlocks(files[i]).ok()) << "file index " << i;
  }
}

}  // namespace
}  // namespace abr::fs
