#include "fs/name_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "disk/drive_spec.h"
#include "fs/file_server.h"

namespace abr::fs {
namespace {

TEST(NameCacheTest, DisabledNeverHits) {
  NameCache cache(0);
  cache.Insert(0, 1);
  EXPECT_FALSE(cache.Lookup(0, 1));
  EXPECT_EQ(cache.size(), 0);
}

TEST(NameCacheTest, HitAfterInsert) {
  NameCache cache(4);
  EXPECT_FALSE(cache.Lookup(0, 1));
  cache.Insert(0, 1);
  EXPECT_TRUE(cache.Lookup(0, 1));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(NameCacheTest, DevicesDistinct) {
  NameCache cache(4);
  cache.Insert(0, 1);
  EXPECT_FALSE(cache.Lookup(1, 1));
}

TEST(NameCacheTest, LruEviction) {
  NameCache cache(2);
  cache.Insert(0, 1);
  cache.Insert(0, 2);
  EXPECT_TRUE(cache.Lookup(0, 1));  // touch 1; LRU = 2
  cache.Insert(0, 3);               // evicts 2
  EXPECT_TRUE(cache.Lookup(0, 1));
  EXPECT_FALSE(cache.Lookup(0, 2));
  EXPECT_TRUE(cache.Lookup(0, 3));
}

TEST(NameCacheTest, DuplicateInsertKeepsSize) {
  NameCache cache(4);
  cache.Insert(0, 1);
  cache.Insert(0, 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(NameCacheTest, Invalidate) {
  NameCache cache(4);
  cache.Insert(0, 1);
  cache.Invalidate(0, 1);
  EXPECT_FALSE(cache.Lookup(0, 1));
  cache.Invalidate(0, 99);  // absent: no-op
}

class DnlcIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver_ = std::make_unique<driver::AdaptiveDriver>(
        disk_.get(), std::move(*label), driver::DriverConfig{}, &store_);
    ASSERT_TRUE(driver_->Attach().ok());
    FileServerConfig config;
    config.cache_blocks = 4;  // tiny, so path blocks never stay cached
    config.name_cache_entries = 64;
    config.update_atime = false;
    server_ = std::make_unique<FileServer>(driver_.get(), config);
    FfsConfig ffs;
    ffs.blocks_per_group = 64;
    ASSERT_TRUE(server_->AddFileSystem(0, ffs).ok());
  }

  std::unique_ptr<disk::Disk> disk_;
  driver::InMemoryTableStore store_;
  std::unique_ptr<driver::AdaptiveDriver> driver_;
  std::unique_ptr<FileServer> server_;
};

TEST_F(DnlcIntegrationTest, SecondOpenSkipsDirectoryWalk) {
  FileId dir = server_->CreateDirectory(0, 0).value();
  FileId file = server_->CreateFileIn(0, dir, 0).value();
  server_->FlushAndDrain();
  ASSERT_TRUE(server_->OpenFile(0, file, kSecond).ok());
  // Churn the tiny buffer cache so the directory blocks are cold again.
  FileId filler = server_->CreateFile(0, 0, 3).value();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server_->AppendBlock(0, filler, 0).ok());
    ASSERT_TRUE(server_->ReadFileBlock(0, filler, i, 0).ok());
  }
  server_->FlushAndDrain();
  driver_->IoctlReadStats(true);
  // DNLC hit: at most the file's own i-node block is read from disk,
  // never the directory chain.
  StatusOr<std::int64_t> misses = server_->OpenFile(0, file, 2 * kSecond);
  ASSERT_TRUE(misses.ok());
  EXPECT_LE(*misses, 1);
  driver_->Drain();
  EXPECT_LE(driver_->IoctlReadStats(true).reads.count(), 1);
  EXPECT_GE(server_->name_cache().hits(), 1);
}

TEST_F(DnlcIntegrationTest, DeletedFileDropsFromNameCache) {
  FileId dir = server_->CreateDirectory(0, 0).value();
  FileId file = server_->CreateFileIn(0, dir, 0).value();
  server_->FlushAndDrain();
  ASSERT_TRUE(server_->OpenFile(0, file, kSecond).ok());
  ASSERT_TRUE(server_->DeleteFile(0, file, 2 * kSecond).ok());
  // A stale DNLC entry must not resolve a dead file.
  EXPECT_FALSE(server_->OpenFile(0, file, 3 * kSecond).ok());
}

}  // namespace
}  // namespace abr::fs
