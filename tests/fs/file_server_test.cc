#include "fs/file_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "disk/drive_spec.h"

namespace abr::fs {
namespace {

class FileServerTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(FileServerConfig{}); }

  void Build(FileServerConfig config) {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver_ = std::make_unique<driver::AdaptiveDriver>(
        disk_.get(), std::move(*label), driver::DriverConfig{}, &store_);
    ASSERT_TRUE(driver_->Attach().ok());
    server_ = std::make_unique<FileServer>(driver_.get(), config);
    FfsConfig ffs;
    ffs.blocks_per_group = 64;
    ASSERT_TRUE(server_->AddFileSystem(0, ffs).ok());
  }

  /// Completed non-internal request count, via the driver's stats.
  std::int64_t DiskRequests() {
    driver_->Drain();
    return driver_->IoctlReadStats(/*clear=*/true).all.count();
  }

  std::unique_ptr<disk::Disk> disk_;
  driver::InMemoryTableStore store_;
  std::unique_ptr<driver::AdaptiveDriver> driver_;
  std::unique_ptr<FileServer> server_;
};

TEST_F(FileServerTest, AddFileSystemValidation) {
  EXPECT_EQ(server_->AddFileSystem(0, FfsConfig{}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server_->AddFileSystem(9, FfsConfig{}).code(),
            StatusCode::kInvalidArgument);
  FfsConfig bad;
  bad.block_size_bytes = 4096;  // driver uses 8192
  EXPECT_EQ(server_->AddFileSystem(1, bad).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FileServerTest, FileSystemSizedFromPartition) {
  Ffs* fs = server_->FileSystemOf(0).value();
  // 90 virtual cylinders * 128 sectors / 16 sectors per block.
  EXPECT_EQ(fs->config().total_blocks, 720);
}

TEST_F(FileServerTest, ReadMissGoesToDisk) {
  // A one-block cache guarantees the data block is cold by read time; no
  // atime updates keeps the request count to exactly the data read.
  FileServerConfig config;
  config.cache_blocks = 1;
  config.update_atime = false;
  Build(config);
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  server_->FlushAndDrain();
  DiskRequests();  // clear
  auto hit = server_->ReadFileBlock(0, *f, 0, kSecond);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(*hit);  // cold cache
  server_->FlushAndDrain();
  EXPECT_EQ(DiskRequests(), 1);  // one data-block read
}

TEST_F(FileServerTest, ReadHitStaysInCache) {
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  ASSERT_TRUE(server_->ReadFileBlock(0, *f, 0, kSecond).ok());
  DiskRequests();
  auto hit = server_->ReadFileBlock(0, *f, 0, 2 * kSecond);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(DiskRequests(), 0);
}

TEST_F(FileServerTest, PeriodicSyncFlushesDirtyBlocks) {
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());  // data + inode dirty
  DiskRequests();
  // Advance past the 30 s update period: dirty blocks reach the disk.
  server_->AdvanceTo(31 * kSecond);
  const std::int64_t writes = DiskRequests();
  EXPECT_GE(writes, 2);  // data block + inode block
  // Nothing left dirty afterwards.
  server_->AdvanceTo(65 * kSecond);
  EXPECT_EQ(DiskRequests(), 0);
}

TEST_F(FileServerTest, AtimeUpdatesMakeReadOnlyWorkloadWrite) {
  FileServerConfig config;
  config.cache_blocks = 1;  // keep the data block cold
  Build(config);
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  server_->FlushAndDrain();
  DiskRequests();
  ASSERT_TRUE(server_->ReadFileBlock(0, *f, 0, kSecond).ok());
  server_->FlushAndDrain();
  auto stats = driver_->IoctlReadStats(true);
  EXPECT_EQ(stats.reads.count(), 1);   // the data block
  EXPECT_EQ(stats.writes.count(), 1);  // the i-node timestamp
}

TEST_F(FileServerTest, AtimeCanBeDisabled) {
  FileServerConfig config;
  config.update_atime = false;
  Build(config);
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  server_->FlushAndDrain();
  DiskRequests();
  ASSERT_TRUE(server_->ReadFileBlock(0, *f, 0, kSecond).ok());
  server_->FlushAndDrain();
  auto stats = driver_->IoctlReadStats(true);
  EXPECT_EQ(stats.writes.count(), 0);
}

TEST_F(FileServerTest, WriteFileBlockDirtiesDataAndInode) {
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  server_->FlushAndDrain();
  DiskRequests();
  ASSERT_TRUE(server_->WriteFileBlock(0, *f, 0, kSecond).ok());
  server_->FlushAndDrain();
  auto stats = driver_->IoctlReadStats(true);
  EXPECT_EQ(stats.writes.count(), 2);  // data + inode
  EXPECT_EQ(stats.reads.count(), 0);   // whole-block overwrite, no RMW
}

TEST_F(FileServerTest, DeleteInvalidatesCachedBlocks) {
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  ASSERT_TRUE(server_->DeleteFile(0, *f, kSecond).ok());
  server_->FlushAndDrain();
  DiskRequests();
  // The deleted file's dirty data must NOT be written at the next sync.
  server_->AdvanceTo(2 * 31 * kSecond);
  auto stats = driver_->IoctlReadStats(true);
  // Only the freed-inode write could appear, and it was already flushed.
  EXPECT_EQ(stats.writes.count(), 0);
}

TEST_F(FileServerTest, OperationsOnMissingDeviceFail) {
  EXPECT_EQ(server_->CreateFile(3, 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server_->ReadFileBlock(3, 1, 0, 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileServerTest, SyncTimerFiresRepeatedly) {
  auto f = server_->CreateFile(0, 0);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(server_->AppendBlock(0, *f, 0).ok());
  server_->AdvanceTo(31 * kSecond);
  DiskRequests();
  // Dirty something between two later sync points.
  ASSERT_TRUE(server_->WriteFileBlock(0, *f, 0, 40 * kSecond).ok());
  server_->AdvanceTo(61 * kSecond);
  EXPECT_GE(DiskRequests(), 1);
}

}  // namespace
}  // namespace abr::fs
