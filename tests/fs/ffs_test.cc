#include "fs/ffs.h"

#include <gtest/gtest.h>

#include <set>

namespace abr::fs {
namespace {

FfsConfig SmallConfig() {
  FfsConfig c;
  c.total_blocks = 256;
  c.blocks_per_group = 64;
  c.inode_blocks_per_group = 2;
  c.inode_size_bytes = 128;
  c.block_size_bytes = 8192;
  c.interleave = 1;
  c.max_blocks_per_group_per_file = 8;
  return c;
}

TEST(FfsTest, GroupLayout) {
  Ffs fs(SmallConfig());
  EXPECT_EQ(fs.group_count(), 4);
  // Each group: 1 metadata + 2 inode blocks -> 61 data blocks.
  EXPECT_EQ(fs.data_block_capacity(), 4 * 61);
  EXPECT_EQ(fs.free_blocks(), fs.data_block_capacity());
}

TEST(FfsTest, CreateFileHonorsGroupHint) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile(/*group_hint=*/2);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(fs.FileGroup(*f).value(), 2);
}

TEST(FfsTest, CreateWithoutHintPicksEmptiestGroup) {
  Ffs fs(SmallConfig());
  // Fill group 0 somewhat.
  auto f0 = fs.CreateFile(0);
  ASSERT_TRUE(f0.ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fs.AppendBlock(*f0).ok());
  auto f1 = fs.CreateFile();
  ASSERT_TRUE(f1.ok());
  EXPECT_NE(fs.FileGroup(*f1).value(), 0);
}

TEST(FfsTest, AppendAllocatesInInodeGroup) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile(1);
  ASSERT_TRUE(f.ok());
  auto b = fs.AppendBlock(*f);
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, 64 * 1);
  EXPECT_LT(*b, 64 * 2);
}

TEST(FfsTest, RotationalInterleaveBetweenConsecutiveBlocks) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile(0);
  ASSERT_TRUE(f.ok());
  auto b0 = fs.AppendBlock(*f);
  auto b1 = fs.AppendBlock(*f);
  ASSERT_TRUE(b0.ok());
  ASSERT_TRUE(b1.ok());
  // With interleave 1, consecutive file blocks sit 2 apart on an empty
  // group.
  EXPECT_EQ(*b1 - *b0, 2);
}

TEST(FfsTest, InterleaveGapsFilledByOtherFiles) {
  Ffs fs(SmallConfig());
  auto a = fs.CreateFile(0);
  auto b = fs.CreateFile(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto a0 = fs.AppendBlock(*a);
  auto a1 = fs.AppendBlock(*a);
  auto b0 = fs.AppendBlock(*b);
  ASSERT_TRUE(b0.ok());
  // The other file's first block lands in a gap or after, still in group 0.
  EXPECT_NE(*b0, *a0);
  EXPECT_NE(*b0, *a1);
  EXPECT_LT(*b0, 64);
}

TEST(FfsTest, LargeFileRotatesGroups) {
  Ffs fs(SmallConfig());  // maxbpg = 8
  auto f = fs.CreateFile(0);
  ASSERT_TRUE(f.ok());
  std::set<std::int64_t> groups;
  for (int i = 0; i < 24; ++i) {
    auto b = fs.AppendBlock(*f);
    ASSERT_TRUE(b.ok());
    groups.insert(*b / 64);
  }
  EXPECT_GE(groups.size(), 3u);
}

TEST(FfsTest, FileBlockLookup) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile();
  ASSERT_TRUE(f.ok());
  std::vector<BlockNo> blocks;
  for (int i = 0; i < 5; ++i) {
    blocks.push_back(fs.AppendBlock(*f).value());
  }
  EXPECT_EQ(fs.FileSize(*f).value(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fs.FileBlock(*f, i).value(), blocks[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(fs.FileBlock(*f, 5).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(fs.FileBlock(*f, -1).status().code(), StatusCode::kOutOfRange);
}

TEST(FfsTest, InodeBlockWithinGroupMetadata) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile(3);
  ASSERT_TRUE(f.ok());
  const BlockNo inode_block = fs.InodeBlock(*f).value();
  EXPECT_GE(inode_block, 3 * 64 + 1);
  EXPECT_LT(inode_block, 3 * 64 + 1 + 2);
}

TEST(FfsTest, InodesShareBlocks) {
  Ffs fs(SmallConfig());
  // 8192/128 = 64 inodes per block: the first 64 files of a group share
  // one inode block.
  auto f1 = fs.CreateFile(0);
  auto f2 = fs.CreateFile(0);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(fs.InodeBlock(*f1).value(), fs.InodeBlock(*f2).value());
}

TEST(FfsTest, DeleteFreesBlocksAndInode) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile(0);
  ASSERT_TRUE(f.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(fs.AppendBlock(*f).ok());
  const std::int64_t free_before = fs.free_blocks();
  ASSERT_TRUE(fs.DeleteFile(*f).ok());
  EXPECT_EQ(fs.free_blocks(), free_before + 4);
  EXPECT_EQ(fs.file_count(), 1u);  // only the root directory remains
  EXPECT_EQ(fs.FileSize(*f).status().code(), StatusCode::kNotFound);
}

TEST(FfsTest, BlocksReusedAfterDelete) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile(0);
  auto b = fs.AppendBlock(*f);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs.DeleteFile(*f).ok());
  auto g = fs.CreateFile(0);
  auto b2 = fs.AppendBlock(*g);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(*b2, *b);
}

TEST(FfsTest, FillToCapacity) {
  Ffs fs(SmallConfig());
  auto f = fs.CreateFile();
  ASSERT_TRUE(f.ok());
  // The root directory already holds one entry block for its entries.
  const std::int64_t capacity = fs.free_blocks();
  for (std::int64_t i = 0; i < capacity; ++i) {
    ASSERT_TRUE(fs.AppendBlock(*f).ok()) << "block " << i;
  }
  EXPECT_EQ(fs.free_blocks(), 0);
  EXPECT_EQ(fs.AppendBlock(*f).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FfsTest, NoTwoFilesShareABlock) {
  Ffs fs(SmallConfig());
  std::set<BlockNo> all;
  for (int i = 0; i < 20; ++i) {
    auto f = fs.CreateFile();
    ASSERT_TRUE(f.ok());
    for (int j = 0; j < 6; ++j) {
      auto b = fs.AppendBlock(*f);
      ASSERT_TRUE(b.ok());
      EXPECT_TRUE(all.insert(*b).second) << "block allocated twice";
    }
  }
}

TEST(FfsTest, InodeExhaustion) {
  FfsConfig config = SmallConfig();
  config.inode_blocks_per_group = 1;  // 64 inodes per group, 256 total
  Ffs fs(config);
  // The root directory consumes one i-node.
  for (int i = 0; i < 255; ++i) {
    ASSERT_TRUE(fs.CreateFile().ok());
  }
  EXPECT_EQ(fs.CreateFile().status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FfsTest, FileIdsEnumeratesLiveFiles) {
  Ffs fs(SmallConfig());
  auto a = fs.CreateFile();
  auto b = fs.CreateFile();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs.DeleteFile(*a).ok());
  auto ids = fs.FileIds();  // includes the root directory
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids[0] == *b || ids[1] == *b);
}

}  // namespace
}  // namespace abr::fs
