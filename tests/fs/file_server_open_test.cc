// Path-lookup (open) behaviour of the FileServer: the metadata read
// stream, its caching, and its interaction with the adaptive driver.

#include <gtest/gtest.h>

#include <memory>

#include "disk/drive_spec.h"
#include "fs/file_server.h"

namespace abr::fs {
namespace {

class FileServerOpenTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(8); }

  void Build(std::int64_t cache_blocks) {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver_ = std::make_unique<driver::AdaptiveDriver>(
        disk_.get(), std::move(*label), driver::DriverConfig{}, &store_);
    ASSERT_TRUE(driver_->Attach().ok());
    FileServerConfig config;
    config.cache_blocks = cache_blocks;
    config.update_atime = false;
    server_ = std::make_unique<FileServer>(driver_.get(), config);
    FfsConfig ffs;
    ffs.blocks_per_group = 64;
    ASSERT_TRUE(server_->AddFileSystem(0, ffs).ok());
  }

  std::int64_t DiskReads() {
    driver_->Drain();
    return driver_->IoctlReadStats(/*clear=*/true).reads.count();
  }

  std::unique_ptr<disk::Disk> disk_;
  driver::InMemoryTableStore store_;
  std::unique_ptr<driver::AdaptiveDriver> driver_;
  std::unique_ptr<FileServer> server_;
};

TEST_F(FileServerOpenTest, ColdOpenReadsWholeLookupChain) {
  FileId dir = server_->CreateDirectory(0, 0).value();
  FileId file = server_->CreateFileIn(0, dir, 0).value();
  server_->FlushAndDrain();
  // Evict everything by touching unrelated blocks.
  FileId filler = server_->CreateFile(0, 0, 3).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server_->AppendBlock(0, filler, 0).ok());
    ASSERT_TRUE(server_->ReadFileBlock(0, filler, i, 0).ok());
  }
  server_->FlushAndDrain();
  DiskReads();

  // Lookup chain: root inode + root entry + dir inode + dir entry + file
  // inode = 5 blocks, of which the dir and file i-nodes share one disk
  // block (both are early i-nodes of the same group) -> 4 cold misses.
  StatusOr<std::int64_t> misses = server_->OpenFile(0, file, kSecond);
  ASSERT_TRUE(misses.ok());
  EXPECT_EQ(*misses, 4);
  EXPECT_EQ(DiskReads(), 4);
}

TEST_F(FileServerOpenTest, WarmOpenHitsCache) {
  FileId dir = server_->CreateDirectory(0, 0).value();
  FileId file = server_->CreateFileIn(0, dir, 0).value();
  server_->FlushAndDrain();
  ASSERT_TRUE(server_->OpenFile(0, file, kSecond).ok());
  DiskReads();
  StatusOr<std::int64_t> misses = server_->OpenFile(0, file, 2 * kSecond);
  ASSERT_TRUE(misses.ok());
  EXPECT_EQ(*misses, 0);
  EXPECT_EQ(DiskReads(), 0);
}

TEST_F(FileServerOpenTest, SiblingOpensShareDirectoryBlocks) {
  FileId dir = server_->CreateDirectory(0, 0).value();
  FileId a = server_->CreateFileIn(0, dir, 0).value();
  FileId b = server_->CreateFileIn(0, dir, 0).value();
  server_->FlushAndDrain();
  ASSERT_TRUE(server_->OpenFile(0, a, kSecond).ok());
  DiskReads();
  // b shares root + dir metadata with a; only blocks not already cached
  // can miss. With a warm chain and shared inode blocks, the second open
  // misses at most one block (b's inode may share a's block).
  StatusOr<std::int64_t> misses = server_->OpenFile(0, b, 2 * kSecond);
  ASSERT_TRUE(misses.ok());
  EXPECT_LE(*misses, 1);
}

TEST_F(FileServerOpenTest, OpenOfMissingFileFails) {
  EXPECT_FALSE(server_->OpenFile(0, 9999, 0).ok());
  EXPECT_FALSE(server_->OpenFile(3, 1, 0).ok());
}

TEST_F(FileServerOpenTest, OpenTrafficIsVisibleToTheDriverMonitor) {
  FileId dir = server_->CreateDirectory(0, 0).value();
  FileId file = server_->CreateFileIn(0, dir, 0).value();
  server_->FlushAndDrain();
  // Churn the cache so the whole lookup chain is cold.
  FileId filler = server_->CreateFile(0, 0, 3).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server_->AppendBlock(0, filler, 0).ok());
    ASSERT_TRUE(server_->ReadFileBlock(0, filler, i, 0).ok());
  }
  server_->FlushAndDrain();
  driver_->IoctlReadRequests();  // clear
  ASSERT_TRUE(server_->OpenFile(0, file, kSecond).ok());
  driver_->Drain();
  // The reference stream analyzer sees the metadata blocks the lookup
  // read, so directory/inode blocks can become hot and be rearranged.
  auto records = driver_->IoctlReadRequests();
  EXPECT_EQ(records.size(), 4u);  // 5-block chain, one shared i-node block
  for (const auto& rec : records) {
    EXPECT_EQ(rec.type, sched::IoType::kRead);
  }
}

}  // namespace
}  // namespace abr::fs
