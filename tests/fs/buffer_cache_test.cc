#include "fs/buffer_cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace abr::fs {
namespace {

struct Io {
  std::int32_t device;
  BlockNo block;
  bool is_read;
  Micros time;
};

class BufferCacheTest : public ::testing::Test {
 protected:
  std::unique_ptr<BufferCache> MakeCache(std::int64_t capacity) {
    return std::make_unique<BufferCache>(
        capacity, [this](std::int32_t d, BlockNo b, bool r, Micros t) {
          ios_.push_back(Io{d, b, r, t});
        });
  }

  std::vector<Io> ios_;
};

TEST_F(BufferCacheTest, ReadMissIssuesDiskRead) {
  auto cache = MakeCache(4);
  EXPECT_FALSE(cache->Read(0, 7, 100));
  ASSERT_EQ(ios_.size(), 1u);
  EXPECT_TRUE(ios_[0].is_read);
  EXPECT_EQ(ios_[0].block, 7);
  EXPECT_EQ(ios_[0].time, 100);
  EXPECT_EQ(cache->misses(), 1);
}

TEST_F(BufferCacheTest, ReadHitIssuesNothing) {
  auto cache = MakeCache(4);
  cache->Read(0, 7, 0);
  ios_.clear();
  EXPECT_TRUE(cache->Read(0, 7, 50));
  EXPECT_TRUE(ios_.empty());
  EXPECT_EQ(cache->hits(), 1);
}

TEST_F(BufferCacheTest, DevicesAreDistinct) {
  auto cache = MakeCache(4);
  cache->Read(0, 7, 0);
  EXPECT_FALSE(cache->Read(1, 7, 0));
}

TEST_F(BufferCacheTest, WriteIsDeferred) {
  auto cache = MakeCache(4);
  cache->Write(0, 9, 0);
  EXPECT_TRUE(ios_.empty());
  EXPECT_EQ(cache->dirty_count(), 1);
  // A read of the freshly written block hits.
  EXPECT_TRUE(cache->Read(0, 9, 1));
}

TEST_F(BufferCacheTest, SyncFlushesAllDirty) {
  auto cache = MakeCache(8);
  cache->Write(0, 1, 0);
  cache->Write(0, 2, 0);
  cache->Read(0, 3, 0);
  ios_.clear();
  EXPECT_EQ(cache->SyncAll(500), 2);
  ASSERT_EQ(ios_.size(), 2u);
  for (const Io& io : ios_) {
    EXPECT_FALSE(io.is_read);
    EXPECT_EQ(io.time, 500);
  }
  EXPECT_EQ(cache->dirty_count(), 0);
  // Blocks stay cached, now clean: second sync writes nothing.
  EXPECT_EQ(cache->SyncAll(600), 0);
}

TEST_F(BufferCacheTest, RewriteKeepsSingleDirtyCount) {
  auto cache = MakeCache(4);
  cache->Write(0, 1, 0);
  cache->Write(0, 1, 1);
  EXPECT_EQ(cache->dirty_count(), 1);
}

TEST_F(BufferCacheTest, LruEvictionOrder) {
  auto cache = MakeCache(2);
  cache->Read(0, 1, 0);
  cache->Read(0, 2, 0);
  cache->Read(0, 1, 0);  // touch 1; LRU is now 2
  ios_.clear();
  cache->Read(0, 3, 0);  // evicts 2
  EXPECT_TRUE(cache->Read(0, 1, 0));   // still cached
  EXPECT_FALSE(cache->Read(0, 2, 0));  // was evicted
}

TEST_F(BufferCacheTest, DirtyEvictionWritesBack) {
  auto cache = MakeCache(2);
  cache->Write(0, 1, 0);
  cache->Read(0, 2, 0);
  ios_.clear();
  cache->Read(0, 3, 100);  // evicts dirty block 1
  ASSERT_EQ(ios_.size(), 2u);
  EXPECT_FALSE(ios_[0].is_read);  // write-back first
  EXPECT_EQ(ios_[0].block, 1);
  EXPECT_EQ(ios_[0].time, 100);
  EXPECT_TRUE(ios_[1].is_read);
  EXPECT_EQ(cache->dirty_count(), 0);
}

TEST_F(BufferCacheTest, CleanEvictionSilent) {
  auto cache = MakeCache(1);
  cache->Read(0, 1, 0);
  ios_.clear();
  cache->Read(0, 2, 0);  // evicts clean 1: only the new read
  ASSERT_EQ(ios_.size(), 1u);
  EXPECT_TRUE(ios_[0].is_read);
}

TEST_F(BufferCacheTest, InvalidateDropsWithoutWriteback) {
  auto cache = MakeCache(4);
  cache->Write(0, 1, 0);
  ios_.clear();
  cache->Invalidate(0, 1);
  EXPECT_TRUE(ios_.empty());
  EXPECT_EQ(cache->dirty_count(), 0);
  EXPECT_FALSE(cache->Read(0, 1, 0));  // miss again
}

TEST_F(BufferCacheTest, InvalidateMissingIsNoOp) {
  auto cache = MakeCache(4);
  cache->Invalidate(0, 99);
  EXPECT_EQ(cache->size(), 0);
}

TEST_F(BufferCacheTest, SizeTracksOccupancy) {
  auto cache = MakeCache(3);
  cache->Read(0, 1, 0);
  cache->Write(0, 2, 0);
  EXPECT_EQ(cache->size(), 2);
  cache->Read(0, 3, 0);
  cache->Read(0, 4, 0);  // eviction keeps size at capacity
  EXPECT_EQ(cache->size(), 3);
}

TEST_F(BufferCacheTest, WriteToFullCacheEvicts) {
  auto cache = MakeCache(1);
  cache->Write(0, 1, 0);
  ios_.clear();
  cache->Write(0, 2, 10);  // evicts dirty 1
  ASSERT_EQ(ios_.size(), 1u);
  EXPECT_EQ(ios_[0].block, 1);
  EXPECT_FALSE(ios_[0].is_read);
}

}  // namespace
}  // namespace abr::fs
