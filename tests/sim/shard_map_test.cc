#include "sim/shard_map.h"

#include <gtest/gtest.h>

#include <vector>

namespace abr::sim {
namespace {

TEST(ShardMapTest, SingleShardIsIdentity) {
  ShardMap map(1, 100);
  for (BlockNo b = 0; b < 100; ++b) {
    EXPECT_EQ(map.ShardOf(b), 0);
    EXPECT_EQ(map.LocalOf(b), b);
    EXPECT_EQ(map.GlobalOf(0, b), b);
  }
  EXPECT_EQ(map.LocalCount(0), 100);
}

TEST(ShardMapTest, RoundRobinStriping) {
  ShardMap map(3, 10);
  // Blocks 0..9 land on shards 0,1,2,0,1,2,... with consecutive locals.
  EXPECT_EQ(map.ShardOf(0), 0);
  EXPECT_EQ(map.ShardOf(1), 1);
  EXPECT_EQ(map.ShardOf(2), 2);
  EXPECT_EQ(map.ShardOf(3), 0);
  EXPECT_EQ(map.LocalOf(0), 0);
  EXPECT_EQ(map.LocalOf(3), 1);
  EXPECT_EQ(map.LocalOf(7), 2);
}

TEST(ShardMapTest, RoundTripCoversEveryBlockExactlyOnce) {
  const std::int32_t shards = 5;
  const std::int64_t total = 137;  // not a multiple of the shard count
  ShardMap map(shards, total);
  std::vector<int> seen(static_cast<std::size_t>(total), 0);
  for (std::int32_t s = 0; s < shards; ++s) {
    for (BlockNo local = 0; local < map.LocalCount(s); ++local) {
      const BlockNo global = map.GlobalOf(s, local);
      ASSERT_TRUE(map.Contains(global));
      EXPECT_EQ(map.ShardOf(global), s);
      EXPECT_EQ(map.LocalOf(global), local);
      ++seen[static_cast<std::size_t>(global)];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardMapTest, LocalCountsSumToTotal) {
  for (std::int32_t shards = 1; shards <= 8; ++shards) {
    ShardMap map(shards, 1000);
    std::int64_t sum = 0;
    for (std::int32_t s = 0; s < shards; ++s) sum += map.LocalCount(s);
    EXPECT_EQ(sum, 1000) << "shards=" << shards;
  }
}

TEST(ShardMapTest, ContainsRejectsOutOfRange) {
  ShardMap map(4, 64);
  EXPECT_TRUE(map.Contains(0));
  EXPECT_TRUE(map.Contains(63));
  EXPECT_FALSE(map.Contains(-1));
  EXPECT_FALSE(map.Contains(64));
}

TEST(ShardMapTest, IndivisibleTotalsGiveEarlyShardsOneExtraBlock) {
  // total mod shards = r: shards 0..r-1 own ceil(total/shards) blocks,
  // the rest floor(total/shards) — for every remainder class.
  for (std::int64_t total = 97; total <= 103; ++total) {
    ShardMap map(7, total);
    const std::int64_t floor_count = total / 7;
    const std::int64_t rem = total % 7;
    std::int64_t sum = 0;
    for (std::int32_t s = 0; s < 7; ++s) {
      const std::int64_t expected = floor_count + (s < rem ? 1 : 0);
      EXPECT_EQ(map.LocalCount(s), expected)
          << "total=" << total << " shard=" << s;
      sum += map.LocalCount(s);
    }
    EXPECT_EQ(sum, total);
  }
}

TEST(ShardMapTest, SingleShardDegenerateEdges) {
  ShardMap map(1, 1);
  EXPECT_EQ(map.ShardOf(0), 0);
  EXPECT_EQ(map.LocalOf(0), 0);
  EXPECT_EQ(map.GlobalOf(0, 0), 0);
  EXPECT_EQ(map.LocalCount(0), 1);

  ShardMap empty(3, 0);
  EXPECT_FALSE(empty.Contains(0));
  for (std::int32_t s = 0; s < 3; ++s) EXPECT_EQ(empty.LocalCount(s), 0);
}

TEST(ShardMapTest, RoundTripAtBothBoundaries) {
  // First and last virtual block, and the first/last local block of each
  // shard, all survive the global -> (shard, local) -> global round trip.
  ShardMap map(5, 137);
  for (BlockNo b : {BlockNo{0}, BlockNo{136}}) {
    EXPECT_EQ(map.GlobalOf(map.ShardOf(b), map.LocalOf(b)), b);
  }
  for (std::int32_t s = 0; s < 5; ++s) {
    const std::int64_t count = map.LocalCount(s);
    ASSERT_GT(count, 0);
    for (BlockNo local : {BlockNo{0}, BlockNo{count - 1}}) {
      const BlockNo global = map.GlobalOf(s, local);
      ASSERT_TRUE(map.Contains(global));
      EXPECT_EQ(map.ShardOf(global), s);
      EXPECT_EQ(map.LocalOf(global), local);
    }
  }
}

}  // namespace
}  // namespace abr::sim
