#include "sim/stripe_map.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/shard_map.h"

namespace abr::sim {
namespace {

TEST(StripeMapTest, SingleMemberIsIdentity) {
  StripeMap map(1, 4, 100);
  for (BlockNo b = 0; b < 100; ++b) {
    EXPECT_EQ(map.MemberOf(b), 0);
    EXPECT_EQ(map.LocalOf(b), b);
    EXPECT_EQ(map.GlobalOf(0, b), b);
  }
  EXPECT_EQ(map.LocalCount(0), 100);
}

TEST(StripeMapTest, ChunkOfOneMatchesShardMap) {
  const std::int64_t total = 137;
  const std::int32_t n = 5;
  StripeMap stripe(n, 1, total);
  ShardMap shard(n, total);
  for (BlockNo b = 0; b < total; ++b) {
    EXPECT_EQ(stripe.MemberOf(b), shard.ShardOf(b));
    EXPECT_EQ(stripe.LocalOf(b), shard.LocalOf(b));
  }
  for (std::int32_t m = 0; m < n; ++m) {
    EXPECT_EQ(stripe.LocalCount(m), shard.LocalCount(m));
  }
}

TEST(StripeMapTest, ChunksStayContiguousOnOneMember) {
  StripeMap map(3, 4, 96);
  // Blocks 0..3 on member 0, 4..7 on member 1, 8..11 on member 2, then
  // the stripe rotates back to member 0 with local numbers continuing.
  for (BlockNo b = 0; b < 4; ++b) {
    EXPECT_EQ(map.MemberOf(b), 0);
    EXPECT_EQ(map.LocalOf(b), b);
  }
  for (BlockNo b = 4; b < 8; ++b) {
    EXPECT_EQ(map.MemberOf(b), 1);
    EXPECT_EQ(map.LocalOf(b), b - 4);
  }
  for (BlockNo b = 8; b < 12; ++b) {
    EXPECT_EQ(map.MemberOf(b), 2);
    EXPECT_EQ(map.LocalOf(b), b - 8);
  }
  EXPECT_EQ(map.MemberOf(12), 0);
  EXPECT_EQ(map.LocalOf(12), 4);
}

TEST(StripeMapTest, RoundTripCoversEveryBlockExactlyOnce) {
  // A total that is not a multiple of chunk * members leaves a partial
  // tail stripe; the round trip must still be a bijection.
  const std::int64_t total = 131;
  const std::int32_t n = 4;
  const std::int64_t chunk = 3;
  StripeMap map(n, chunk, total);
  std::vector<int> seen(total, 0);
  std::int64_t covered = 0;
  for (std::int32_t m = 0; m < n; ++m) {
    const std::int64_t count = map.LocalCount(m);
    for (BlockNo local = 0; local < count; ++local) {
      const BlockNo global = map.GlobalOf(m, local);
      ASSERT_TRUE(map.Contains(global));
      EXPECT_EQ(map.MemberOf(global), m);
      EXPECT_EQ(map.LocalOf(global), local);
      ++seen[static_cast<std::size_t>(global)];
      ++covered;
    }
  }
  EXPECT_EQ(covered, total);
  for (std::int64_t b = 0; b < total; ++b) EXPECT_EQ(seen[b], 1);
}

TEST(StripeMapTest, LocalCountsHandlePartialTailStripe) {
  // total = 2 full stripes (24) + a tail of 7: member 0 gets a full
  // chunk (4), member 1 the remaining 3, member 2 nothing extra.
  StripeMap map(3, 4, 31);
  EXPECT_EQ(map.LocalCount(0), 8 + 4);
  EXPECT_EQ(map.LocalCount(1), 8 + 3);
  EXPECT_EQ(map.LocalCount(2), 8 + 0);
  EXPECT_EQ(map.LocalCount(0) + map.LocalCount(1) + map.LocalCount(2), 31);
}

TEST(StripeMapTest, BoundaryBlocksRoundTrip) {
  StripeMap map(4, 8, 1024);
  for (BlockNo b : {BlockNo{0}, BlockNo{7}, BlockNo{8}, BlockNo{31},
                    BlockNo{32}, BlockNo{1023}}) {
    const std::int32_t m = map.MemberOf(b);
    EXPECT_EQ(map.GlobalOf(m, map.LocalOf(b)), b);
  }
  EXPECT_FALSE(map.Contains(-1));
  EXPECT_FALSE(map.Contains(1024));
}

}  // namespace
}  // namespace abr::sim
