#include "sim/disk_system.h"

#include <gtest/gtest.h>

#include <vector>

namespace abr::sim {
namespace {

disk::DriveSpec Spec() { return disk::DriveSpec::TestDrive(100, 4, 32); }

sched::IoRequest Req(std::int64_t id, Micros arrival, Cylinder cylinder) {
  sched::IoRequest r;
  r.id = id;
  r.arrival_time = arrival;
  r.sector = static_cast<SectorNo>(cylinder) * 128;
  r.sector_count = 16;
  return r;
}

/// Test sink that collects every completion.
struct CollectingSink : CompletionSink {
  void OnIoComplete(const CompletedIo& done) override {
    completed.push_back(done);
  }
  std::vector<CompletedIo> completed;
};

class DiskSystemTest : public ::testing::Test {
 protected:
  DiskSystemTest()
      : disk_(Spec()),
        system_(&disk_, sched::MakeScheduler(sched::SchedulerKind::kFcfs,
                                             128)) {
    system_.set_completion_sink(&sink_);
  }

  disk::Disk disk_;
  DiskSystem system_;
  CollectingSink sink_;
  std::vector<CompletedIo>& completed_ = sink_.completed;
};

TEST_F(DiskSystemTest, IdleDiskDispatchesImmediately) {
  system_.Submit(Req(1, 1000, 10));
  EXPECT_TRUE(system_.busy());
  EXPECT_EQ(system_.queued(), 0u);
  system_.Drain();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(completed_[0].dispatch_time, 1000);
  EXPECT_EQ(completed_[0].queue_time, 0);
  EXPECT_GT(completed_[0].service_time, 0);
}

TEST_F(DiskSystemTest, QueueTimeMeasuredFromArrival) {
  system_.Submit(Req(1, 0, 50));     // long seek keeps the disk busy
  system_.Submit(Req(2, 100, 10));   // arrives while busy
  system_.Drain();
  ASSERT_EQ(completed_.size(), 2u);
  const CompletedIo& second = completed_[1];
  EXPECT_EQ(second.dispatch_time, completed_[0].completion_time);
  EXPECT_EQ(second.queue_time, second.dispatch_time - 100);
  EXPECT_GT(second.queue_time, 0);
}

TEST_F(DiskSystemTest, ServiceTimeMatchesBreakdown) {
  system_.Submit(Req(1, 0, 30));
  system_.Drain();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(completed_[0].service_time, completed_[0].breakdown.total());
  EXPECT_EQ(completed_[0].completion_time,
            completed_[0].dispatch_time + completed_[0].service_time);
}

TEST_F(DiskSystemTest, AdvanceToCompletesDueWork) {
  system_.Submit(Req(1, 0, 1));
  const Micros far = 10 * kSecond;
  system_.AdvanceTo(far);
  EXPECT_EQ(completed_.size(), 1u);
  EXPECT_FALSE(system_.busy());
  EXPECT_EQ(system_.now(), far);
}

TEST_F(DiskSystemTest, AdvanceToBeforeCompletionDoesNotComplete) {
  system_.Submit(Req(1, 0, 99));  // sizable seek
  system_.AdvanceTo(1);
  EXPECT_TRUE(system_.busy());
  EXPECT_TRUE(completed_.empty());
}

TEST_F(DiskSystemTest, ClockAdvancesToArrival) {
  system_.Submit(Req(1, 5000, 3));
  EXPECT_GE(system_.now(), 5000);
}

TEST_F(DiskSystemTest, PastArrivalAllowedForHeldRequests) {
  system_.Submit(Req(1, 0, 40));
  system_.Drain();
  const Micros now = system_.now();
  // Release a request whose arrival was long ago.
  sched::IoRequest held = Req(2, 10, 5);
  system_.Submit(held);
  system_.Drain();
  ASSERT_EQ(completed_.size(), 2u);
  EXPECT_EQ(completed_[1].dispatch_time, now);
  EXPECT_EQ(completed_[1].queue_time, now - 10);
}

TEST_F(DiskSystemTest, DrainReturnsLastCompletion) {
  system_.Submit(Req(1, 0, 10));
  system_.Submit(Req(2, 0, 20));
  const Micros end = system_.Drain();
  ASSERT_EQ(completed_.size(), 2u);
  EXPECT_EQ(end, completed_[1].completion_time);
  EXPECT_FALSE(system_.busy());
  EXPECT_EQ(system_.queued(), 0u);
}

TEST_F(DiskSystemTest, CompletionOrderFollowsScheduler) {
  // FCFS: completion order == arrival order even when seeks differ.
  system_.Submit(Req(1, 0, 90));
  system_.Submit(Req(2, 1, 0));
  system_.Submit(Req(3, 2, 90));
  system_.Drain();
  ASSERT_EQ(completed_.size(), 3u);
  EXPECT_EQ(completed_[0].request.id, 1);
  EXPECT_EQ(completed_[1].request.id, 2);
  EXPECT_EQ(completed_[2].request.id, 3);
}

TEST(DiskSystemScanTest, ScanReordersQueuedBurst) {
  disk::Disk disk(Spec());
  DiskSystem system(&disk, sched::MakeScheduler(
                               sched::SchedulerKind::kScan, 128));
  CollectingSink sink;
  system.set_completion_sink(&sink);
  // One in-flight op, then a burst that SCAN should serve in sweep order.
  system.Submit(Req(1, 0, 10));
  system.Submit(Req(2, 1, 80));
  system.Submit(Req(3, 1, 20));
  system.Submit(Req(4, 1, 50));
  system.Drain();
  ASSERT_EQ(sink.completed.size(), 4u);
  EXPECT_EQ(sink.completed[0].request.id, 1);
  // From cylinder 10 sweeping up: 20, 50, 80.
  EXPECT_EQ(sink.completed[1].request.id, 3);
  EXPECT_EQ(sink.completed[2].request.id, 4);
  EXPECT_EQ(sink.completed[3].request.id, 2);
}

TEST_F(DiskSystemTest, SimultaneousArrivalsAllServed) {
  for (int i = 0; i < 20; ++i) system_.Submit(Req(i, 1000, i * 4));
  system_.Drain();
  EXPECT_EQ(completed_.size(), 20u);
}

}  // namespace
}  // namespace abr::sim
