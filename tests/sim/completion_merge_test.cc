#include "sim/completion_merge.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace abr::sim {
namespace {

CompletedIo Done(std::int64_t id, Micros completion) {
  CompletedIo io;
  io.request.id = id;
  io.completion_time = completion;
  return io;
}

struct Collector : ShardCompletionSink {
  std::vector<std::pair<std::int32_t, std::int64_t>> seen;  // (shard, id)
  std::vector<Micros> times;
  void OnShardIoComplete(std::int32_t shard, const CompletedIo& done) override {
    seen.emplace_back(shard, done.request.id);
    times.push_back(done.completion_time);
  }
};

TEST(CompletionMergerTest, MergesLanesInGlobalTimeOrder) {
  CompletionMerger merger(3);
  merger.lane(0).push_back(Done(1, 100));
  merger.lane(0).push_back(Done(2, 500));
  merger.lane(1).push_back(Done(10, 50));
  merger.lane(1).push_back(Done(11, 400));
  merger.lane(2).push_back(Done(20, 300));

  Collector sink;
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.seen.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sink.times.begin(), sink.times.end()));
  EXPECT_EQ(sink.seen[0], (std::pair<std::int32_t, std::int64_t>{1, 10}));
  EXPECT_EQ(sink.seen[1], (std::pair<std::int32_t, std::int64_t>{0, 1}));
  EXPECT_EQ(sink.seen[4], (std::pair<std::int32_t, std::int64_t>{0, 2}));
  EXPECT_EQ(merger.merged_count(), 5);
  EXPECT_EQ(merger.buffered(), 0u);
}

TEST(CompletionMergerTest, TiesKeepTheLowerShard) {
  CompletionMerger merger(2);
  merger.lane(1).push_back(Done(10, 100));
  merger.lane(0).push_back(Done(1, 100));
  Collector sink;
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].first, 0);
  EXPECT_EQ(sink.seen[1].first, 1);
}

TEST(CompletionMergerTest, WithinShardLaneOrderIsPreserved) {
  CompletionMerger merger(1);
  // Same completion time: delivery order is the lane's own order.
  merger.lane(0).push_back(Done(7, 100));
  merger.lane(0).push_back(Done(3, 100));
  Collector sink;
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].second, 7);
  EXPECT_EQ(sink.seen[1].second, 3);
}

TEST(CompletionMergerTest, NullSinkJustClearsLanes) {
  CompletionMerger merger(2);
  merger.lane(0).push_back(Done(1, 1));
  merger.lane(1).push_back(Done(2, 2));
  merger.DrainInto(nullptr);
  EXPECT_EQ(merger.buffered(), 0u);
  EXPECT_EQ(merger.merged_count(), 0);
}

TEST(CompletionMergerTest, DrainAcrossEpochsStaysOrdered) {
  CompletionMerger merger(2);
  Collector sink;
  merger.lane(0).push_back(Done(1, 10));
  merger.lane(1).push_back(Done(2, 20));
  merger.DrainInto(&sink);
  merger.lane(1).push_back(Done(3, 30));
  merger.lane(0).push_back(Done(4, 40));
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.times.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sink.times.begin(), sink.times.end()));
  EXPECT_EQ(merger.merged_count(), 4);
}

TEST(CompletionMergerTest, StagedBankDrainsWhileFillBankCollects) {
  CompletionMerger merger(2);
  Collector sink;
  // Window 0 fills, then is staged; window 1 fills the swapped-in bank
  // while window 0 drains — the overlap the coordinator pipeline relies on.
  merger.lane(0).push_back(Done(1, 10));
  merger.lane(1).push_back(Done(2, 20));
  merger.StageLanes();
  merger.lane(0).push_back(Done(3, 30));
  merger.DrainStaged(&sink);
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(merger.buffered(), 1u);  // window 1 still banked
  merger.StageLanes();
  merger.DrainStaged(&sink);
  ASSERT_EQ(sink.times.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sink.times.begin(), sink.times.end()));
  EXPECT_EQ(merger.merged_count(), 3);
}

TEST(CompletionMergerTest, LaneCapacityIsRetainedAcrossEpochs) {
  constexpr std::int32_t kShards = 3;
  constexpr int kPerEpoch = 64;
  CompletionMerger merger(kShards);
  Collector sink;
  // Warm-up epoch grows the lanes (and, via one drain of each bank, the
  // tree and head scratch) to steady-state size.
  auto run_epoch = [&](Micros base) {
    for (std::int32_t s = 0; s < kShards; ++s) {
      for (int i = 0; i < kPerEpoch; ++i) {
        merger.lane(s).push_back(Done(s * 1000 + i, base + i));
      }
    }
    merger.StageLanes();
    merger.DrainStaged(&sink);
  };
  run_epoch(0);
  run_epoch(10000);
  std::vector<std::size_t> warm;
  for (std::int32_t s = 0; s < kShards; ++s) {
    EXPECT_GE(merger.lane_capacity(s), static_cast<std::size_t>(kPerEpoch));
    warm.push_back(merger.lane_capacity(s));
  }
  // Steady state: many more epochs of the same load must not re-allocate —
  // clear() keeps capacity, and the banks only swap.
  for (int e = 2; e < 20; ++e) {
    run_epoch(e * 10000);
    for (std::int32_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(merger.lane_capacity(s), warm[static_cast<std::size_t>(s)])
          << "lane " << s << " re-allocated in epoch " << e;
    }
  }
  EXPECT_EQ(merger.merged_count(), 20 * kShards * kPerEpoch);
  EXPECT_EQ(merger.buffered(), 0u);
}

}  // namespace
}  // namespace abr::sim
