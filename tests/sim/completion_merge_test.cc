#include "sim/completion_merge.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace abr::sim {
namespace {

CompletedIo Done(std::int64_t id, Micros completion) {
  CompletedIo io;
  io.request.id = id;
  io.completion_time = completion;
  return io;
}

struct Collector : ShardCompletionSink {
  std::vector<std::pair<std::int32_t, std::int64_t>> seen;  // (shard, id)
  std::vector<Micros> times;
  void OnShardIoComplete(std::int32_t shard, const CompletedIo& done) override {
    seen.emplace_back(shard, done.request.id);
    times.push_back(done.completion_time);
  }
};

TEST(CompletionMergerTest, MergesLanesInGlobalTimeOrder) {
  CompletionMerger merger(3);
  merger.lane(0).push_back(Done(1, 100));
  merger.lane(0).push_back(Done(2, 500));
  merger.lane(1).push_back(Done(10, 50));
  merger.lane(1).push_back(Done(11, 400));
  merger.lane(2).push_back(Done(20, 300));

  Collector sink;
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.seen.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sink.times.begin(), sink.times.end()));
  EXPECT_EQ(sink.seen[0], (std::pair<std::int32_t, std::int64_t>{1, 10}));
  EXPECT_EQ(sink.seen[1], (std::pair<std::int32_t, std::int64_t>{0, 1}));
  EXPECT_EQ(sink.seen[4], (std::pair<std::int32_t, std::int64_t>{0, 2}));
  EXPECT_EQ(merger.merged_count(), 5);
  EXPECT_EQ(merger.buffered(), 0u);
}

TEST(CompletionMergerTest, TiesKeepTheLowerShard) {
  CompletionMerger merger(2);
  merger.lane(1).push_back(Done(10, 100));
  merger.lane(0).push_back(Done(1, 100));
  Collector sink;
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].first, 0);
  EXPECT_EQ(sink.seen[1].first, 1);
}

TEST(CompletionMergerTest, WithinShardLaneOrderIsPreserved) {
  CompletionMerger merger(1);
  // Same completion time: delivery order is the lane's own order.
  merger.lane(0).push_back(Done(7, 100));
  merger.lane(0).push_back(Done(3, 100));
  Collector sink;
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].second, 7);
  EXPECT_EQ(sink.seen[1].second, 3);
}

TEST(CompletionMergerTest, NullSinkJustClearsLanes) {
  CompletionMerger merger(2);
  merger.lane(0).push_back(Done(1, 1));
  merger.lane(1).push_back(Done(2, 2));
  merger.DrainInto(nullptr);
  EXPECT_EQ(merger.buffered(), 0u);
  EXPECT_EQ(merger.merged_count(), 0);
}

TEST(CompletionMergerTest, DrainAcrossEpochsStaysOrdered) {
  CompletionMerger merger(2);
  Collector sink;
  merger.lane(0).push_back(Done(1, 10));
  merger.lane(1).push_back(Done(2, 20));
  merger.DrainInto(&sink);
  merger.lane(1).push_back(Done(3, 30));
  merger.lane(0).push_back(Done(4, 40));
  merger.DrainInto(&sink);
  ASSERT_EQ(sink.times.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sink.times.begin(), sink.times.end()));
  EXPECT_EQ(merger.merged_count(), 4);
}

}  // namespace
}  // namespace abr::sim
