#include "sim/lookahead.h"

#include <gtest/gtest.h>

#include "disk/disk.h"
#include "disk/geometry.h"
#include "util/types.h"

namespace abr::sim {
namespace {

constexpr Micros kGrid = 2 * kMinute;

TEST(LookaheadFloorTest, IsTheOneSectorTransferTime) {
  disk::Geometry g;
  g.cylinders = 100;
  g.tracks_per_cylinder = 4;
  g.sectors_per_track = 48;
  g.rpm = 3600;
  // One revolution at 3600 rpm is 16667us; 48 sectors/track -> 347us.
  EXPECT_EQ(LookaheadFloor(g), g.sector_time());
  EXPECT_EQ(LookaheadFloor(g), 347);
}

TEST(LookaheadFloorTest, NeverBelowOneMicrosecond) {
  // A degenerate geometry (absurdly dense track) must not yield a zero
  // floor: a zero-width window would never make progress.
  disk::Geometry g;
  g.cylinders = 1;
  g.tracks_per_cylinder = 1;
  g.sectors_per_track = 100000000;
  g.rpm = 3600;
  ASSERT_EQ(g.sector_time(), 0);
  EXPECT_EQ(LookaheadFloor(g), 1);
}

TEST(PlanWindowEndTest, FirstGridIsUnconditional) {
  // Even with an event bound of "now", the window covers one grid: one
  // grid is exactly the fixed-epoch oracle's step, so it needs no
  // lookahead to be admissible.
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/10 * kGrid,
                          /*event_bound=*/0, /*max_grids=*/32),
            kGrid);
}

TEST(PlanWindowEndTest, FirstGridClampsToLimit) {
  // A caller advancing less than one grid (day tail) gets exactly the
  // remainder, never beyond the requested advance.
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/kGrid / 2,
                          /*event_bound=*/disk::kNoFaultEvent,
                          /*max_grids=*/32),
            kGrid / 2);
}

TEST(PlanWindowEndTest, QuietHorizonFusesUpToTheLimit) {
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/5 * kGrid,
                          /*event_bound=*/disk::kNoFaultEvent,
                          /*max_grids=*/32),
            5 * kGrid);
}

TEST(PlanWindowEndTest, NeverOvershootsACrossMemberEvent) {
  // A fault event due mid-grid-4 stops extension at the last grid
  // boundary at or before it: grids 2 and 3 extend, grid 4 would end
  // past the bound and is refused.
  const Micros bound = 3 * kGrid + kGrid / 2;
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/32 * kGrid, bound,
                          /*max_grids=*/32),
            3 * kGrid);
  // A bound exactly on a grid boundary admits that grid (events at the
  // window end happen at the barrier, after the window is serviced).
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/32 * kGrid,
                          /*event_bound=*/3 * kGrid, /*max_grids=*/32),
            3 * kGrid);
  // A bound inside the first grid cannot shrink it below one grid.
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/32 * kGrid,
                          /*event_bound=*/kGrid / 4, /*max_grids=*/32),
            kGrid);
}

TEST(PlanWindowEndTest, MaxGridsCapsTheWindow) {
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/100 * kGrid,
                          /*event_bound=*/disk::kNoFaultEvent,
                          /*max_grids=*/4),
            4 * kGrid);
  EXPECT_EQ(PlanWindowEnd(/*from=*/0, kGrid, /*limit=*/100 * kGrid,
                          /*event_bound=*/disk::kNoFaultEvent,
                          /*max_grids=*/1),
            kGrid);
}

TEST(PlanWindowEndTest, WindowsEndOnTheGridFromAnyStart) {
  // Starting mid-stream: extensions are whole grids from `from`, so the
  // fused window still replays the same boundaries the oracle visits.
  const Micros from = 7 * kGrid;
  EXPECT_EQ(PlanWindowEnd(from, kGrid, /*limit=*/from + 10 * kGrid,
                          /*event_bound=*/from + 3 * kGrid + 1,
                          /*max_grids=*/32),
            from + 3 * kGrid);
}

}  // namespace
}  // namespace abr::sim
