#include "baselines/file_temperature.h"

#include <gtest/gtest.h>

#include <memory>

#include "disk/drive_spec.h"
#include "placement/reserved_region.h"

namespace abr::baselines {
namespace {

using analyzer::BlockId;
using analyzer::HotBlock;

class FileTemperatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    driver::DriverConfig config;
    config.block_table_capacity = 16;
    driver_ = std::make_unique<driver::AdaptiveDriver>(
        disk_.get(), std::move(*label), config, &store_);
    ASSERT_TRUE(driver_->Attach().ok());

    fs::FfsConfig ffs_config;
    ffs_config.total_blocks = 720;
    ffs_config.blocks_per_group = 90;
    fs_ = std::make_unique<fs::Ffs>(ffs_config);
  }

  /// Creates a file of `blocks` blocks; returns (id, its block numbers).
  std::pair<fs::FileId, std::vector<BlockNo>> MakeFile(std::int64_t blocks) {
    auto f = fs_->CreateFile();
    EXPECT_TRUE(f.ok());
    std::vector<BlockNo> out;
    for (std::int64_t i = 0; i < blocks; ++i) {
      auto b = fs_->AppendBlock(*f);
      EXPECT_TRUE(b.ok());
      out.push_back(*b);
    }
    return {*f, out};
  }

  std::unique_ptr<disk::Disk> disk_;
  driver::InMemoryTableStore store_;
  std::unique_ptr<driver::AdaptiveDriver> driver_;
  std::unique_ptr<fs::Ffs> fs_;
};

TEST_F(FileTemperatureTest, RankFilesByTemperature) {
  auto [hot_small, hot_blocks] = MakeFile(2);     // 20 refs / 2 = 10.0
  auto [warm_big, warm_blocks] = MakeFile(10);    // 50 refs / 10 = 5.0
  auto [cold, cold_blocks] = MakeFile(4);         // untouched

  std::vector<HotBlock> counts;
  for (BlockNo b : hot_blocks) counts.push_back({BlockId{0, b}, 10});
  for (BlockNo b : warm_blocks) counts.push_back({BlockId{0, b}, 5});
  // Metadata/unknown blocks are ignored.
  counts.push_back({BlockId{0, 0}, 1000});

  auto ranked = FileTemperatureArranger::RankFiles(*fs_, counts);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].file, hot_small);
  EXPECT_DOUBLE_EQ(ranked[0].temperature, 10.0);
  EXPECT_EQ(ranked[0].references, 20);
  EXPECT_EQ(ranked[0].blocks, 2);
  EXPECT_EQ(ranked[1].file, warm_big);
  (void)cold;
  (void)cold_blocks;
}

TEST_F(FileTemperatureTest, RearrangeMovesWholeFiles) {
  auto [hot, hot_blocks] = MakeFile(3);
  std::vector<HotBlock> counts;
  for (BlockNo b : hot_blocks) counts.push_back({BlockId{0, b}, 9});
  FileTemperatureArranger arranger;
  auto result = arranger.Rearrange(*driver_, *fs_, 0, counts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copied, 3);
  for (BlockNo b : hot_blocks) {
    EXPECT_TRUE(driver_->block_table().Lookup(b * 16).has_value())
        << "block " << b;
  }
  (void)hot;
}

TEST_F(FileTemperatureTest, HotterFileGetsMoreCentralSlots) {
  auto [hot, hot_blocks] = MakeFile(2);
  auto [warm, warm_blocks] = MakeFile(2);
  std::vector<HotBlock> counts;
  for (BlockNo b : hot_blocks) counts.push_back({BlockId{0, b}, 50});
  for (BlockNo b : warm_blocks) counts.push_back({BlockId{0, b}, 5});
  FileTemperatureArranger arranger;
  ASSERT_TRUE(arranger.Rearrange(*driver_, *fs_, 0, counts).ok());
  const placement::ReservedRegion region =
      placement::ReservedRegion::FromDriver(*driver_);
  const std::vector<std::int32_t> order = region.OrganPipeSlotOrder();
  // The hot file's blocks occupy the first organ-pipe slots in file order.
  EXPECT_EQ(driver_->block_table().Lookup(hot_blocks[0] * 16).value(),
            region.SlotSector(order[0]));
  EXPECT_EQ(driver_->block_table().Lookup(hot_blocks[1] * 16).value(),
            region.SlotSector(order[1]));
  (void)hot;
  (void)warm;
}

TEST_F(FileTemperatureTest, OversizedFileSkippedForSmallerOne) {
  // Reserved slots: table capacity 16 -> at most 16 slots.
  auto [huge, huge_blocks] = MakeFile(40);  // cannot fit
  auto [small, small_blocks] = MakeFile(2);
  std::vector<HotBlock> counts;
  for (BlockNo b : huge_blocks) counts.push_back({BlockId{0, b}, 100});
  for (BlockNo b : small_blocks) counts.push_back({BlockId{0, b}, 1});
  FileTemperatureArranger arranger;
  auto result = arranger.Rearrange(*driver_, *fs_, 0, counts);
  ASSERT_TRUE(result.ok());
  // The huge file is passed over; the small one fits.
  EXPECT_EQ(result->copied, 2);
  EXPECT_TRUE(
      driver_->block_table().Lookup(small_blocks[0] * 16).has_value());
  (void)huge;
  (void)small;
}

TEST_F(FileTemperatureTest, SecondRearrangeCleansFirst) {
  auto [a, a_blocks] = MakeFile(2);
  auto [b, b_blocks] = MakeFile(2);
  FileTemperatureArranger arranger;
  std::vector<HotBlock> first;
  for (BlockNo blk : a_blocks) first.push_back({BlockId{0, blk}, 5});
  ASSERT_TRUE(arranger.Rearrange(*driver_, *fs_, 0, first).ok());
  std::vector<HotBlock> second;
  for (BlockNo blk : b_blocks) second.push_back({BlockId{0, blk}, 5});
  auto result = arranger.Rearrange(*driver_, *fs_, 0, second);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cleaned, 2);
  EXPECT_FALSE(driver_->block_table().Lookup(a_blocks[0] * 16).has_value());
  EXPECT_TRUE(driver_->block_table().Lookup(b_blocks[0] * 16).has_value());
  (void)a;
  (void)b;
}

TEST_F(FileTemperatureTest, RequiresRearrangedDisk) {
  disk::Disk plain(disk::DriveSpec::TestDrive());
  disk::DiskLabel label = disk::DiskLabel::Plain(plain.geometry());
  driver::AdaptiveDriver plain_driver(&plain, label, driver::DriverConfig{},
                                      nullptr);
  ASSERT_TRUE(plain_driver.Attach().ok());
  FileTemperatureArranger arranger;
  EXPECT_EQ(arranger.Rearrange(plain_driver, *fs_, 0, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace abr::baselines
