#include "baselines/cylinder_shuffle.h"

#include <gtest/gtest.h>

#include <memory>

#include "disk/drive_spec.h"

namespace abr::baselines {
namespace {

class CylinderShuffleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    disk::DiskLabel label = disk::DiskLabel::Plain(disk_->geometry());
    driver_ = std::make_unique<CylinderShuffleDriver>(
        disk_.get(), label, CylinderShuffleDriver::Config{});
  }

  /// Issues n reads of the given block and drains.
  void ReadBlock(BlockNo block, int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(driver_
                      ->SubmitBlock(0, block, sched::IoType::kRead,
                                    driver_->now())
                      .ok());
    }
    driver_->Drain();
  }

  std::unique_ptr<disk::Disk> disk_;
  std::unique_ptr<CylinderShuffleDriver> driver_;
};

TEST_F(CylinderShuffleTest, IdentityLayoutInitially) {
  for (Cylinder c = 0; c < 100; c += 13) {
    EXPECT_EQ(driver_->PhysicalCylinderOf(c), c);
  }
}

TEST_F(CylinderShuffleTest, SubmitValidation) {
  EXPECT_EQ(driver_->SubmitBlock(3, 0, sched::IoType::kRead, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(driver_->SubmitBlock(0, -1, sched::IoType::kRead, 0).code(),
            StatusCode::kOutOfRange);
}

TEST_F(CylinderShuffleTest, RequestsServedAtMappedLocation) {
  ReadBlock(0, 1);  // block 0 = cylinder 0
  EXPECT_EQ(disk_->head_cylinder(), 0);
}

TEST_F(CylinderShuffleTest, ShuffleMovesHotCylinderToCenter) {
  // Heat cylinder 2 (blocks 16..23 live on cylinder 2: 128 sectors/cyl,
  // 16 per block -> 8 blocks per cylinder).
  ReadBlock(16, 10);
  ReadBlock(17, 5);
  auto moved = driver_->Shuffle();
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(*moved, 0);
  EXPECT_EQ(driver_->PhysicalCylinderOf(2), 50);  // center of 100 cylinders
  // Requests for cylinder-2 blocks now service at the center.
  driver_->ReadStats(true);
  ReadBlock(16, 1);
  EXPECT_EQ(disk_->head_cylinder(), 50);
}

TEST_F(CylinderShuffleTest, ShuffleIsAPermutation) {
  ReadBlock(16, 10);
  ReadBlock(400, 7);
  ASSERT_TRUE(driver_->Shuffle().ok());
  std::vector<bool> used(100, false);
  for (Cylinder v = 0; v < 100; ++v) {
    const Cylinder p = driver_->PhysicalCylinderOf(v);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 100);
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
    used[static_cast<std::size_t>(p)] = true;
  }
}

TEST_F(CylinderShuffleTest, ShufflePreservesData) {
  // Stamp a sector on cylinder 2, heat that cylinder, shuffle, and check
  // the stamp moved with it.
  disk_->WritePayload(2 * 128 + 5, 0xABCD);
  ReadBlock(16, 10);
  ASSERT_TRUE(driver_->Shuffle().ok());
  const Cylinder now_at = driver_->PhysicalCylinderOf(2);
  EXPECT_EQ(disk_->ReadPayload(now_at * 128 + 5), 0xABCDu);
}

TEST_F(CylinderShuffleTest, ShuffleChargesMovementIo) {
  ReadBlock(16, 10);
  EXPECT_EQ(driver_->shuffle_io_count(), 0);
  auto moved = driver_->Shuffle();
  ASSERT_TRUE(moved.ok());
  // One read + one write per moved cylinder.
  EXPECT_EQ(driver_->shuffle_io_count(), 2 * *moved);
  EXPECT_GT(driver_->shuffle_io_time(), 0);
}

TEST_F(CylinderShuffleTest, ResetLayoutRestoresIdentityAndData) {
  disk_->WritePayload(2 * 128 + 5, 0x1234);
  ReadBlock(16, 10);
  ASSERT_TRUE(driver_->Shuffle().ok());
  ASSERT_TRUE(driver_->ResetLayout().ok());
  for (Cylinder c = 0; c < 100; ++c) {
    EXPECT_EQ(driver_->PhysicalCylinderOf(c), c);
  }
  EXPECT_EQ(disk_->ReadPayload(2 * 128 + 5), 0x1234u);
}

TEST_F(CylinderShuffleTest, ShuffleRejectedWhileBusy) {
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 500, sched::IoType::kRead, driver_->now())
          .ok());
  EXPECT_EQ(driver_->Shuffle().status().code(), StatusCode::kBusy);
  driver_->Drain();
  EXPECT_TRUE(driver_->Shuffle().ok());
}

TEST_F(CylinderShuffleTest, StatsRecorded) {
  ReadBlock(16, 3);
  auto stats = driver_->ReadStats(true);
  EXPECT_EQ(stats.reads.count(), 3);
  EXPECT_EQ(stats.all.count(), 3);
}

TEST_F(CylinderShuffleTest, FcfsDistancesUseUnshuffledLayout) {
  ReadBlock(16, 10);  // heat cylinder 2
  ASSERT_TRUE(driver_->Shuffle().ok());
  driver_->ReadStats(true);
  // Alternate between virtual cylinders 2 and 3.
  ReadBlock(16, 1);
  ReadBlock(24, 1);
  auto stats = driver_->ReadStats(true);
  ASSERT_GE(stats.reads.fcfs_seek_distance.count(), 1);
  // FCFS distance is |3 - 2| = 1 in the unshuffled layout, regardless of
  // where the cylinders physically ended up.
  EXPECT_DOUBLE_EQ(stats.reads.fcfs_seek_distance.Mean(), 1.0);
}

TEST_F(CylinderShuffleTest, BlockStraddlingCylinderSplit) {
  // TestDrive has 128 sectors per cylinder and 16-sector blocks, so no
  // straddling; rebuild with 34-sector tracks (136 per cylinder).
  disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive(100, 4, 34));
  disk::DiskLabel label = disk::DiskLabel::Plain(disk_->geometry());
  driver_ = std::make_unique<CylinderShuffleDriver>(
      disk_.get(), label, CylinderShuffleDriver::Config{});
  // Block 8 covers sectors 128..143, straddling cylinders 0 and 1.
  ASSERT_TRUE(driver_->SubmitBlock(0, 8, sched::IoType::kRead, 0).ok());
  driver_->Drain();
  auto stats = driver_->ReadStats(true);
  EXPECT_EQ(stats.reads.count(), 2);  // two pieces
}

}  // namespace
}  // namespace abr::baselines
