#include "stats/summary.h"

#include <gtest/gtest.h>

namespace abr::stats {
namespace {

TEST(SummaryTest, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.avg(), 3.5);
}

TEST(SummaryTest, MinAvgMax) {
  Summary s;
  for (double v : {2.0, 8.0, 5.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.avg(), 5.0);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.Add(-1.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.avg(), 0.0);
}

TEST(RankCurveTest, IgnoresZeros) {
  RankCurve c({0, 5, 0, 3});
  EXPECT_EQ(c.distinct(), 2);
  EXPECT_EQ(c.total(), 8);
}

TEST(RankCurveTest, SortsDescending) {
  RankCurve c({1, 9, 4});
  EXPECT_EQ(c.CountAtRank(0), 9);
  EXPECT_EQ(c.CountAtRank(1), 4);
  EXPECT_EQ(c.CountAtRank(2), 1);
}

TEST(RankCurveTest, TopKFraction) {
  RankCurve c({10, 30, 60});
  EXPECT_DOUBLE_EQ(c.TopKFraction(0), 0.0);
  EXPECT_DOUBLE_EQ(c.TopKFraction(1), 0.6);
  EXPECT_DOUBLE_EQ(c.TopKFraction(2), 0.9);
  EXPECT_DOUBLE_EQ(c.TopKFraction(3), 1.0);
}

TEST(RankCurveTest, TopKClamped) {
  RankCurve c({4});
  EXPECT_DOUBLE_EQ(c.TopKFraction(100), 1.0);
  EXPECT_DOUBLE_EQ(c.TopKFraction(-5), 0.0);
}

TEST(RankCurveTest, EmptyCurve) {
  RankCurve c({});
  EXPECT_EQ(c.distinct(), 0);
  EXPECT_EQ(c.total(), 0);
  EXPECT_DOUBLE_EQ(c.TopKFraction(1), 0.0);
}

}  // namespace
}  // namespace abr::stats
