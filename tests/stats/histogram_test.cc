#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace abr::stats {
namespace {

TEST(TimeHistogramTest, EmptyDefaults) {
  TimeHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.total(), 0);
  EXPECT_DOUBLE_EQ(h.MeanMillis(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(1000), 0.0);
}

TEST(TimeHistogramTest, MeanUsesFullResolution) {
  TimeHistogram h;  // 1 ms buckets
  h.Add(100);       // 0.1 ms
  h.Add(200);
  h.Add(300);
  // Bucketed at 1 ms, but mean is exact: 0.2 ms.
  EXPECT_DOUBLE_EQ(h.MeanMillis(), 0.2);
}

TEST(TimeHistogramTest, MinMaxFullResolution) {
  TimeHistogram h;
  h.Add(1234);
  h.Add(99);
  h.Add(5001);
  EXPECT_EQ(h.min(), 99);
  EXPECT_EQ(h.max(), 5001);
}

TEST(TimeHistogramTest, BucketBoundaries) {
  TimeHistogram h(1000);
  h.Add(0);
  h.Add(999);   // same bucket as 0
  h.Add(1000);  // next bucket
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
}

TEST(TimeHistogramTest, FractionBelow) {
  TimeHistogram h(1000);
  for (Micros v : {500, 1500, 2500, 3500}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.FractionBelow(2000), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionBelow(4000), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(1000), 0.25);
  EXPECT_DOUBLE_EQ(h.FractionBelow(0), 0.0);
}

TEST(TimeHistogramTest, PercentileMillis) {
  TimeHistogram h(1000);
  for (int i = 0; i < 100; ++i) h.Add(i * 1000);
  // p50 falls in the bucket of the 50th sample.
  EXPECT_NEAR(h.PercentileMillis(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.PercentileMillis(1.0), 100.0, 1.0);
}

TEST(TimeHistogramTest, CdfPointsMonotone) {
  TimeHistogram h(1000);
  for (Micros v : {100, 2100, 2200, 9000}) h.Add(v);
  auto points = h.CdfPoints();
  ASSERT_FALSE(points.empty());
  double prev = 0.0;
  for (const auto& [ms, frac] : points) {
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(TimeHistogramTest, MergeCombines) {
  TimeHistogram a, b;
  a.Add(1000);
  a.Add(3000);
  b.Add(2000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.total(), 6000);
  EXPECT_EQ(a.min(), 1000);
  EXPECT_EQ(a.max(), 3000);
}

TEST(TimeHistogramTest, MergeIntoEmpty) {
  TimeHistogram a, b;
  b.Add(700);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 700);
}

TEST(TimeHistogramTest, ClearResets) {
  TimeHistogram h;
  h.Add(42);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.total(), 0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(DistanceHistogramTest, Empty) {
  DistanceHistogram d;
  EXPECT_EQ(d.count(), 0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.ZeroFraction(), 0.0);
}

TEST(DistanceHistogramTest, MeanAndZeroFraction) {
  DistanceHistogram d;
  d.Add(0);
  d.Add(0);
  d.Add(10);
  d.Add(30);
  EXPECT_DOUBLE_EQ(d.Mean(), 10.0);
  EXPECT_DOUBLE_EQ(d.ZeroFraction(), 0.5);
}

TEST(DistanceHistogramTest, MeanOfAppliesFunction) {
  DistanceHistogram d;
  d.Add(0);
  d.Add(4);
  // f(d) = d^2 -> mean = (0 + 16) / 2 = 8.
  EXPECT_DOUBLE_EQ(d.MeanOf([](std::int64_t x) {
    return static_cast<double>(x * x);
  }),
                   8.0);
}

TEST(DistanceHistogramTest, MeanOfMatchesPaperSeekComputation) {
  // The paper computes mean seek time from the distance distribution and
  // a seek-time function; duplicates must be weighted by count.
  DistanceHistogram d;
  d.Add(2);
  d.Add(2);
  d.Add(6);
  EXPECT_DOUBLE_EQ(
      d.MeanOf([](std::int64_t x) { return static_cast<double>(x); }),
      d.Mean());
}

TEST(DistanceHistogramTest, MergeAndClear) {
  DistanceHistogram a, b;
  a.Add(1);
  b.Add(0);
  b.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  a.Clear();
  EXPECT_EQ(a.count(), 0);
}

}  // namespace
}  // namespace abr::stats
