// Differential tests for the hot seek/rotation kernels.
//
// The seek lookup table must be bit-identical to the retained analytic
// evaluator (the oracle behind --analytic-seek) at every cylinder
// distance of both paper drives. The strength-reduced rotation kernel in
// Disk::Service must be integer-identical to the original double-modulo
// phase computation for every arrival pattern, including the anchor
// fallback paths (backward time, jumps longer than one rotation).

#include "disk/disk.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "disk/seek_model.h"
#include "util/rng.h"

namespace abr::disk {
namespace {

// --- Seek LUT vs analytic oracle -------------------------------------------

void ExpectLutMatchesAnalytic(const SeekModel& table) {
  SeekModel analytic = table;
  analytic.set_analytic(true);
  ASSERT_TRUE(analytic.analytic());
  ASSERT_FALSE(table.analytic());
  for (std::int64_t d = 0; d <= table.max_distance(); ++d) {
    // Bit-identical, not approximately equal: the table entry was filled
    // by the very same evaluation the analytic mode performs per call.
    EXPECT_EQ(table.Millis(d), analytic.Millis(d)) << "d=" << d;
    EXPECT_EQ(table.TimeFor(d), analytic.TimeFor(d)) << "d=" << d;
  }
}

TEST(SeekKernelDiffTest, ToshibaLutMatchesAnalyticEverywhere) {
  ExpectLutMatchesAnalytic(SeekModel::ToshibaMK156F());
}

TEST(SeekKernelDiffTest, FujitsuLutMatchesAnalyticEverywhere) {
  ExpectLutMatchesAnalytic(SeekModel::FujitsuM2266());
}

TEST(SeekKernelDiffTest, AnalyticZeroDistanceStaysFree) {
  SeekModel m = SeekModel::ToshibaMK156F();
  m.set_analytic(true);
  EXPECT_DOUBLE_EQ(m.Millis(0), 0.0);
  EXPECT_EQ(m.TimeFor(0), 0);
}

// --- Rotation kernel vs double-modulo oracle -------------------------------

DriveSpec Spec() { return DriveSpec::TestDrive(100, 4, 32); }

/// The pre-kernel rotation computation: platter phase from an absolute
/// modulo of the arrival-at-cylinder time, then a second modulo to wrap
/// the offset difference.
Micros OracleRotation(const Geometry& g, SectorNo sector, Micros at) {
  const Micros rotation = g.rotation_time();
  const Micros now_offset = at % rotation;
  const Micros target_offset =
      static_cast<Micros>(g.SectorInTrack(sector)) * g.sector_time();
  return (target_offset - now_offset + rotation) % rotation;
}

/// Services `sector` at `start` on the kernel disk and checks the rotation
/// against the oracle formula (which needs the seek the disk just charged).
void ExpectOracleRotation(Disk& d, const Geometry& g, SectorNo sector,
                          std::int64_t count, Micros start) {
  const ServiceBreakdown b = d.Service(sector, count, /*is_read=*/true, start);
  EXPECT_EQ(b.rotation, OracleRotation(g, sector, start + b.seek))
      << "sector=" << sector << " start=" << start;
}

TEST(RotationKernelDiffTest, MonotoneTrafficMatchesOracle) {
  Disk d(Spec());
  const Geometry& g = d.geometry();
  Rng rng(0x5EED);
  Micros now = 0;
  for (int i = 0; i < 4000; ++i) {
    // Small forward steps keep the rolling anchor on its fast path.
    now += static_cast<Micros>(rng.NextBounded(3000));
    const SectorNo sector =
        static_cast<SectorNo>(rng.NextBounded(
            static_cast<std::uint64_t>(g.total_sectors() - 16)));
    ExpectOracleRotation(d, g, sector, 1 + (i % 8), now);
  }
}

TEST(RotationKernelDiffTest, LongGapsForceReanchor) {
  Disk d(Spec());
  const Geometry& g = d.geometry();
  const Micros rotation = g.rotation_time();
  Rng rng(0xA5);
  Micros now = 0;
  for (int i = 0; i < 500; ++i) {
    // Jumps of several rotations: delta >= rotation, so the kernel must
    // fall back to the real modulo and re-anchor.
    now += rotation * static_cast<Micros>(1 + rng.NextBounded(7)) +
           static_cast<Micros>(rng.NextBounded(1000));
    const SectorNo sector =
        static_cast<SectorNo>(rng.NextBounded(
            static_cast<std::uint64_t>(g.total_sectors() - 16)));
    ExpectOracleRotation(d, g, sector, 4, now);
  }
}

TEST(RotationKernelDiffTest, BackwardTimeFallsBackToModulo) {
  // The disk API does not require monotone start times; the anchor's
  // delta < 0 guard must route such calls through the exact modulo.
  Disk d(Spec());
  const Geometry& g = d.geometry();
  ExpectOracleRotation(d, g, /*sector=*/320, 4, /*start=*/500000);
  ExpectOracleRotation(d, g, /*sector=*/320, 4, /*start=*/1234);
  ExpectOracleRotation(d, g, /*sector=*/4096, 4, /*start=*/999);
}

TEST(RotationKernelDiffTest, OffsetWrapAroundIndexZero) {
  // Target offset below the current phase: the conditional add must wrap
  // exactly like the old (+ rotation) % rotation did.
  Disk d(Spec());
  const Geometry& g = d.geometry();
  const Micros sector_time = g.sector_time();
  // Phase the platter just past sector 5, then ask for sector 2 of the
  // same track: target_offset < now_offset.
  ExpectOracleRotation(d, g, /*sector=*/2, 1, /*start=*/5 * sector_time + 7);
}

TEST(RotationKernelDiffTest, ZeroDistanceSeekAndSameSectorReread) {
  Disk d(Spec());
  const Geometry& g = d.geometry();
  // Land on cylinder 10, then re-read the same sector with no seek: the
  // rotation charged must be a full revolution minus the transfer the
  // head just finished, exactly as the oracle computes it.
  ExpectOracleRotation(d, g, /*sector=*/10 * 128, 1, /*start=*/0);
  const Micros later = 2 * g.rotation_time() + 5;
  ExpectOracleRotation(d, g, /*sector=*/10 * 128, 1, later);
  // Zero-rotation case: arrive exactly when the target sector starts.
  const Micros aligned = 8 * g.rotation_time();
  const ServiceBreakdown b =
      d.Service(10 * 128, 1, /*is_read=*/true, aligned);
  EXPECT_EQ(b.seek, 0);
  EXPECT_EQ(b.rotation, 0);
}

TEST(RotationKernelDiffTest, AnchorBoundaryDeltaEqualsRotation) {
  Disk d(Spec());
  const Geometry& g = d.geometry();
  const Micros rotation = g.rotation_time();
  // Anchor at t, then arrive at exactly t + rotation (delta == rotation,
  // one past the fast-path guard) and at t + rotation - 1 (last fast-path
  // delta). Both must match the oracle.
  ExpectOracleRotation(d, g, /*sector=*/64, 1, /*start=*/1000);
  const Micros anchor = 1000;  // seek was 0: cylinder 0 both times
  ExpectOracleRotation(d, g, /*sector=*/64, 1, anchor + rotation - 1);
  ExpectOracleRotation(d, g, /*sector=*/64, 1,
                       anchor + rotation - 1 + rotation);
}

}  // namespace
}  // namespace abr::disk
