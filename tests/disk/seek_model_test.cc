#include "disk/seek_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace abr::disk {
namespace {

TEST(SeekModelTest, ZeroDistanceIsFree) {
  EXPECT_DOUBLE_EQ(SeekModel::ToshibaMK156F().Millis(0), 0.0);
  EXPECT_DOUBLE_EQ(SeekModel::FujitsuM2266().Millis(0), 0.0);
  EXPECT_EQ(SeekModel::ToshibaMK156F().TimeFor(0), 0);
}

TEST(SeekModelTest, ToshibaMatchesTable1Formula) {
  const SeekModel m = SeekModel::ToshibaMK156F();
  auto formula = [](double d) {
    if (d < 315) {
      return 6.248 + 1.393 * std::sqrt(d) - 0.99 * std::cbrt(d) +
             0.813 * std::log(d);
    }
    return 17.503 + 0.03 * d;
  };
  for (std::int64_t d : {1, 2, 10, 100, 314, 315, 500, 814}) {
    EXPECT_NEAR(m.Millis(d), formula(static_cast<double>(d)), 1e-9)
        << "d=" << d;
  }
}

TEST(SeekModelTest, FujitsuMatchesTable1Formula) {
  const SeekModel m = SeekModel::FujitsuM2266();
  auto formula = [](double d) {
    if (d <= 225) {
      return 1.205 + 0.65 * std::sqrt(d) - 0.734 * std::cbrt(d) +
             0.659 * std::log(d);
    }
    return 7.44 + 0.0114 * d;
  };
  for (std::int64_t d : {1, 5, 50, 225, 226, 1000, 1657}) {
    EXPECT_NEAR(m.Millis(d), formula(static_cast<double>(d)), 1e-9)
        << "d=" << d;
  }
}

TEST(SeekModelTest, MaxDistanceMatchesCylinders) {
  EXPECT_EQ(SeekModel::ToshibaMK156F().max_distance(), 814);
  EXPECT_EQ(SeekModel::FujitsuM2266().max_distance(), 1657);
}

TEST(SeekModelTest, MonotoneWithinEachRegime) {
  // The published piecewise models are monotone within each regime but
  // have small *downward* discontinuities at the breakpoints (315 for the
  // Toshiba, 226 for the Fujitsu) — a quirk of the original curve fits
  // that this reproduction preserves verbatim.
  const SeekModel toshiba = SeekModel::ToshibaMK156F();
  for (std::int64_t d = 2; d <= toshiba.max_distance(); ++d) {
    if (d == 315) continue;
    EXPECT_GE(toshiba.Millis(d) + 1e-9, toshiba.Millis(d - 1)) << "d=" << d;
  }
  const SeekModel fujitsu = SeekModel::FujitsuM2266();
  for (std::int64_t d = 2; d <= fujitsu.max_distance(); ++d) {
    if (d == 226) continue;
    EXPECT_GE(fujitsu.Millis(d) + 1e-9, fujitsu.Millis(d - 1)) << "d=" << d;
  }
}

TEST(SeekModelTest, PublishedBreakpointDiscontinuities) {
  // Document the fitted models' seams: both step *down* slightly when the
  // linear long-seek regime takes over.
  const SeekModel toshiba = SeekModel::ToshibaMK156F();
  EXPECT_LT(toshiba.Millis(315), toshiba.Millis(314));
  const SeekModel fujitsu = SeekModel::FujitsuM2266();
  EXPECT_LT(fujitsu.Millis(226), fujitsu.Millis(225));
}

TEST(SeekModelTest, OneCylinderSeekCosts) {
  // These constants drive the whole Toshiba-vs-Fujitsu zero-seek story:
  // a short seek on the Toshiba is ~6x more expensive.
  EXPECT_NEAR(SeekModel::ToshibaMK156F().Millis(1), 6.651, 0.01);
  EXPECT_NEAR(SeekModel::FujitsuM2266().Millis(1), 1.121, 0.01);
}

TEST(SeekModelTest, MicrosRounding) {
  const SeekModel m = SeekModel::Linear(1.0004, 0.0, 10);
  EXPECT_EQ(m.TimeFor(5), 1000);  // 1.0004 ms -> 1000 us (round to nearest)
  const SeekModel m2 = SeekModel::Linear(1.0006, 0.0, 10);
  EXPECT_EQ(m2.TimeFor(5), 1001);
}

TEST(SeekModelTest, LinearModel) {
  const SeekModel m = SeekModel::Linear(2.0, 0.5, 100);
  EXPECT_DOUBLE_EQ(m.Millis(0), 0.0);
  EXPECT_DOUBLE_EQ(m.Millis(1), 2.5);
  EXPECT_DOUBLE_EQ(m.Millis(100), 52.0);
}

TEST(SeekModelTest, CustomFunctionTabulated) {
  const SeekModel m([](std::int64_t d) { return d * 1.0; }, 5);
  for (std::int64_t d = 0; d <= 5; ++d) {
    EXPECT_DOUBLE_EQ(m.Millis(d), static_cast<double>(d));
  }
}

TEST(SeekModelTest, FullStrokeTimes) {
  // Full-stroke sanity: Toshiba ~42 ms, Fujitsu ~26 ms.
  EXPECT_NEAR(SeekModel::ToshibaMK156F().Millis(814), 41.9, 0.1);
  EXPECT_NEAR(SeekModel::FujitsuM2266().Millis(1657), 26.3, 0.1);
}

}  // namespace
}  // namespace abr::disk
