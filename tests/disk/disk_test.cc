#include "disk/disk.h"

#include <gtest/gtest.h>

namespace abr::disk {
namespace {

DriveSpec Spec() { return DriveSpec::TestDrive(100, 4, 32); }

TEST(DiskTest, SeekDistanceAndTime) {
  Disk d(Spec());
  EXPECT_EQ(d.head_cylinder(), 0);
  // Target cylinder 10: 128 sectors/cylinder in the test drive.
  ServiceBreakdown b = d.Service(10 * 128, 16, /*is_read=*/true, 0);
  EXPECT_EQ(b.seek_distance, 10);
  EXPECT_EQ(b.seek, Spec().seek_model.TimeFor(10));
  EXPECT_EQ(d.head_cylinder(), 10);
}

TEST(DiskTest, ZeroSeekOnSameCylinder) {
  Disk d(Spec());
  d.Service(10 * 128, 16, true, 0);
  ServiceBreakdown b = d.Service(10 * 128 + 64, 16, true, 1000000);
  EXPECT_EQ(b.seek_distance, 0);
  EXPECT_EQ(b.seek, 0);
}

TEST(DiskTest, RotationBounded) {
  Disk d(Spec());
  const Micros rotation = Spec().geometry.rotation_time();
  for (int i = 0; i < 50; ++i) {
    ServiceBreakdown b =
        d.Service((i * 37) % 3000, 4, true, i * 997 + 13);
    EXPECT_GE(b.rotation, 0);
    EXPECT_LT(b.rotation, rotation);
  }
}

TEST(DiskTest, RotationDependsOnArrivalPhase) {
  // Servicing the same sector at two different absolute times should
  // generally produce different rotational delays (continuous platter).
  Disk d1(Spec()), d2(Spec());
  ServiceBreakdown b1 = d1.Service(320, 4, true, 0);
  ServiceBreakdown b2 = d2.Service(320, 4, true, 1234);
  EXPECT_NE(b1.rotation, b2.rotation);
}

TEST(DiskTest, RotationExactPhase) {
  Disk d(Spec());
  const Geometry& g = Spec().geometry;
  // At time 0 the head is over sector 0 of each track; sector index 4
  // starts after 4 sector times; target on cylinder 0 => no seek.
  ServiceBreakdown b = d.Service(4, 1, true, 0);
  EXPECT_EQ(b.seek, 0);
  EXPECT_EQ(b.rotation, 4 * g.sector_time());
}

TEST(DiskTest, TransferProportionalToLength) {
  Disk d(Spec());
  const Micros sector_time = Spec().geometry.sector_time();
  ServiceBreakdown b1 = d.Service(0, 1, true, 0);
  ServiceBreakdown b16 = d.Service(0, 16, true, 1000000);
  EXPECT_EQ(b1.transfer, sector_time);
  EXPECT_EQ(b16.transfer, 16 * sector_time);
}

TEST(DiskTest, TotalIsSumOfParts) {
  Disk d(Spec());
  ServiceBreakdown b = d.Service(777, 8, false, 31337);
  EXPECT_EQ(b.total(), b.seek + b.rotation + b.transfer);
}

TEST(DiskTest, BufferHitSkipsMechanics) {
  DriveSpec spec = Spec();
  spec.track_buffer_bytes = 64 * 512;  // 64 sectors
  Disk d(std::move(spec));
  d.Service(10 * 128, 16, true, 0);  // media read fills buffer
  ServiceBreakdown hit = d.Service(10 * 128 + 16, 16, true, 1000000);
  EXPECT_TRUE(hit.buffer_hit);
  EXPECT_EQ(hit.seek, 0);
  EXPECT_EQ(hit.rotation, 0);
  EXPECT_GT(hit.transfer, 0);
  EXPECT_EQ(d.buffer_hits(), 1);
}

TEST(DiskTest, NoBufferHitsWithoutBuffer) {
  Disk d(Spec());  // test drive has no buffer
  d.Service(0, 16, true, 0);
  ServiceBreakdown again = d.Service(0, 16, true, 1000000);
  EXPECT_FALSE(again.buffer_hit);
  EXPECT_EQ(d.buffer_hits(), 0);
}

TEST(DiskTest, WriteInvalidatesBuffer) {
  DriveSpec spec = Spec();
  spec.track_buffer_bytes = 64 * 512;
  Disk d(std::move(spec));
  d.Service(10 * 128, 16, true, 0);
  d.Service(10 * 128, 16, false, 1000000);  // overlapping write
  ServiceBreakdown after = d.Service(10 * 128, 16, true, 2000000);
  EXPECT_FALSE(after.buffer_hit);
}

TEST(DiskTest, PayloadReadWrite) {
  Disk d(Spec());
  EXPECT_EQ(d.ReadPayload(42), 0u);
  d.WritePayload(42, 0xDEADBEEF);
  EXPECT_EQ(d.ReadPayload(42), 0xDEADBEEFu);
}

TEST(DiskTest, PayloadCopy) {
  Disk d(Spec());
  for (SectorNo s = 0; s < 16; ++s) {
    d.WritePayload(100 + s, 0x1000 + static_cast<std::uint64_t>(s));
  }
  d.CopyPayload(100, 500, 16);
  for (SectorNo s = 0; s < 16; ++s) {
    EXPECT_EQ(d.ReadPayload(500 + s), 0x1000 + static_cast<std::uint64_t>(s));
  }
}

TEST(DiskTest, SectorsServicedAccumulates) {
  Disk d(Spec());
  d.Service(0, 16, true, 0);
  d.Service(128, 8, false, 1000000);
  EXPECT_EQ(d.sectors_serviced(), 24);
}

TEST(DiskTest, MoveHeadTo) {
  Disk d(Spec());
  d.MoveHeadTo(50);
  ServiceBreakdown b = d.Service(50 * 128, 4, true, 0);
  EXPECT_EQ(b.seek_distance, 0);
}

}  // namespace
}  // namespace abr::disk
