#include "disk/geometry.h"

#include <gtest/gtest.h>

#include "disk/drive_spec.h"

namespace abr::disk {
namespace {

Geometry Small() {
  Geometry g;
  g.cylinders = 10;
  g.tracks_per_cylinder = 4;
  g.sectors_per_track = 8;
  g.rpm = 3600;
  g.bytes_per_sector = 512;
  return g;
}

TEST(GeometryTest, DerivedCounts) {
  Geometry g = Small();
  EXPECT_EQ(g.sectors_per_cylinder(), 32);
  EXPECT_EQ(g.total_sectors(), 320);
  EXPECT_EQ(g.capacity_bytes(), 320 * 512);
}

TEST(GeometryTest, RotationTimes) {
  Geometry g = Small();
  EXPECT_EQ(g.rotation_time(), MillisToMicros(1000.0 * 60 / 3600));
  EXPECT_EQ(g.sector_time(), g.rotation_time() / 8);
}

TEST(GeometryTest, ChsMapping) {
  Geometry g = Small();
  EXPECT_EQ(g.CylinderOf(0), 0);
  EXPECT_EQ(g.CylinderOf(31), 0);
  EXPECT_EQ(g.CylinderOf(32), 1);
  EXPECT_EQ(g.TrackOf(0), 0);
  EXPECT_EQ(g.TrackOf(8), 1);
  EXPECT_EQ(g.TrackOf(33), 0);
  EXPECT_EQ(g.SectorInTrack(0), 0);
  EXPECT_EQ(g.SectorInTrack(9), 1);
}

TEST(GeometryTest, FirstSectorOfInvertsCylinderOf) {
  Geometry g = Small();
  for (Cylinder c = 0; c < g.cylinders; ++c) {
    EXPECT_EQ(g.CylinderOf(g.FirstSectorOf(c)), c);
  }
}

TEST(GeometryTest, ContainsAndRanges) {
  Geometry g = Small();
  EXPECT_TRUE(g.Contains(0));
  EXPECT_TRUE(g.Contains(319));
  EXPECT_FALSE(g.Contains(320));
  EXPECT_FALSE(g.Contains(-1));
  EXPECT_TRUE(g.ContainsRange(310, 10));
  EXPECT_FALSE(g.ContainsRange(311, 10));
  EXPECT_FALSE(g.ContainsRange(-1, 2));
}

TEST(GeometryTest, Validity) {
  EXPECT_TRUE(Small().Valid());
  Geometry g;
  EXPECT_FALSE(g.Valid());
}

TEST(GeometryTest, PaperDrivesCapacity) {
  // Table 1: Toshiba 135 MB, Fujitsu ~1 GB.
  const Geometry toshiba = DriveSpec::ToshibaMK156F().geometry;
  const Geometry fujitsu = DriveSpec::FujitsuM2266().geometry;
  EXPECT_NEAR(toshiba.capacity_bytes() / 1e6, 141.9, 1.0);
  EXPECT_NEAR(fujitsu.capacity_bytes() / 1e9, 1.08, 0.05);
  EXPECT_EQ(toshiba.cylinders, 815);
  EXPECT_EQ(fujitsu.cylinders, 1658);
}

class GeometryParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GeometryParamTest, SectorChsRoundTrip) {
  auto [cyl, tracks, sectors] = GetParam();
  Geometry g;
  g.cylinders = cyl;
  g.tracks_per_cylinder = tracks;
  g.sectors_per_track = sectors;
  ASSERT_TRUE(g.Valid());
  // Property: every sector's (cylinder, track, sector-in-track) decomposes
  // uniquely and recombines to the sector number.
  for (SectorNo s = 0; s < g.total_sectors();
       s += std::max<SectorNo>(1, g.total_sectors() / 997)) {
    const Cylinder c = g.CylinderOf(s);
    const std::int32_t t = g.TrackOf(s);
    const std::int32_t i = g.SectorInTrack(s);
    // Reconstruct via track-relative offset within the cylinder: note the
    // track index counts whole tracks from the cylinder start, and
    // SectorInTrack is modulo the track length.
    const SectorNo within = s - g.FirstSectorOf(c);
    EXPECT_EQ(within / g.sectors_per_track, t);
    EXPECT_EQ(s % g.sectors_per_track, i);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, g.cylinders);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryParamTest,
    ::testing::Values(std::tuple{815, 10, 34}, std::tuple{1658, 15, 85},
                      std::tuple{100, 4, 32}, std::tuple{3, 1, 1},
                      std::tuple{7, 2, 9}));

}  // namespace
}  // namespace abr::disk
