#include "disk/disk_label.h"

#include <gtest/gtest.h>

#include "disk/drive_spec.h"

namespace abr::disk {
namespace {

Geometry TestGeometry() { return DriveSpec::TestDrive(100, 4, 32).geometry; }

TEST(DiskLabelTest, PlainLabelExposesFullDisk) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  EXPECT_FALSE(label.rearranged());
  EXPECT_EQ(label.virtual_geometry(), label.physical_geometry());
  ASSERT_EQ(label.partitions().size(), 1u);
  EXPECT_EQ(label.partitions()[0].sector_count,
            TestGeometry().total_sectors());
}

TEST(DiskLabelTest, PlainMappingIsIdentity) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  for (SectorNo s : {0, 100, 3199}) {
    EXPECT_EQ(label.VirtualToPhysical(s), s);
    EXPECT_EQ(label.PhysicalToVirtual(s), s);
    EXPECT_FALSE(label.InReservedRegion(s));
  }
}

TEST(DiskLabelTest, RearrangedShrinksVirtualDisk) {
  auto label = DiskLabel::Rearranged(TestGeometry(), 10);
  ASSERT_TRUE(label.ok());
  EXPECT_TRUE(label->rearranged());
  EXPECT_EQ(label->virtual_geometry().cylinders, 90);
  EXPECT_EQ(label->reserved_cylinder_count(), 10);
  // Reserved region centered on the physical disk.
  EXPECT_EQ(label->reserved_first_cylinder(), 45);
  EXPECT_EQ(label->reserved_sector_count(), 10 * 128);
}

TEST(DiskLabelTest, RearrangedValidation) {
  EXPECT_FALSE(DiskLabel::Rearranged(TestGeometry(), 0).ok());
  EXPECT_FALSE(DiskLabel::Rearranged(TestGeometry(), -1).ok());
  EXPECT_FALSE(DiskLabel::Rearranged(TestGeometry(), 100).ok());
  EXPECT_TRUE(DiskLabel::Rearranged(TestGeometry(), 99).ok());
  EXPECT_FALSE(DiskLabel::Rearranged(Geometry{}, 5).ok());
}

TEST(DiskLabelTest, MappingSkipsReservedRegion) {
  auto label = DiskLabel::Rearranged(TestGeometry(), 10);
  ASSERT_TRUE(label.ok());
  const SectorNo boundary = 45 * 128;
  EXPECT_EQ(label->VirtualToPhysical(0), 0);
  EXPECT_EQ(label->VirtualToPhysical(boundary - 1), boundary - 1);
  // First virtual sector at/after the boundary jumps past the region.
  EXPECT_EQ(label->VirtualToPhysical(boundary), boundary + 10 * 128);
  const SectorNo last_virtual =
      label->virtual_geometry().total_sectors() - 1;
  EXPECT_EQ(label->VirtualToPhysical(last_virtual),
            TestGeometry().total_sectors() - 1);
}

TEST(DiskLabelTest, MappingRoundTripProperty) {
  auto label = DiskLabel::Rearranged(TestGeometry(), 8);
  ASSERT_TRUE(label.ok());
  for (SectorNo v = 0; v < label->virtual_geometry().total_sectors(); ++v) {
    const SectorNo p = label->VirtualToPhysical(v);
    EXPECT_FALSE(label->InReservedRegion(p)) << "v=" << v;
    EXPECT_EQ(label->PhysicalToVirtual(p), v);
  }
}

TEST(DiskLabelTest, MappingIsInjective) {
  auto label = DiskLabel::Rearranged(TestGeometry(), 8);
  ASSERT_TRUE(label.ok());
  std::vector<bool> hit(
      static_cast<std::size_t>(TestGeometry().total_sectors()), false);
  for (SectorNo v = 0; v < label->virtual_geometry().total_sectors(); ++v) {
    const SectorNo p = label->VirtualToPhysical(v);
    EXPECT_FALSE(hit[static_cast<std::size_t>(p)]);
    hit[static_cast<std::size_t>(p)] = true;
  }
}

TEST(DiskLabelTest, InReservedRegionBounds) {
  auto label = DiskLabel::Rearranged(TestGeometry(), 10);
  ASSERT_TRUE(label.ok());
  const SectorNo first = label->reserved_first_sector();
  const SectorNo count = label->reserved_sector_count();
  EXPECT_FALSE(label->InReservedRegion(first - 1));
  EXPECT_TRUE(label->InReservedRegion(first));
  EXPECT_TRUE(label->InReservedRegion(first + count - 1));
  EXPECT_FALSE(label->InReservedRegion(first + count));
}

TEST(DiskLabelTest, PartitionEvenly) {
  auto label = DiskLabel::Rearranged(TestGeometry(), 10);
  ASSERT_TRUE(label.ok());
  ASSERT_TRUE(label->PartitionEvenly(3).ok());
  ASSERT_EQ(label->partitions().size(), 3u);
  std::int64_t total = 0;
  for (const Partition& p : label->partitions()) {
    EXPECT_EQ(p.first_sector %
                  label->virtual_geometry().sectors_per_cylinder(),
              0)
        << "partitions start on cylinder boundaries";
    total += p.sector_count;
  }
  EXPECT_EQ(total, label->virtual_geometry().total_sectors());
}

TEST(DiskLabelTest, PartitionEvenlyValidation) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  EXPECT_FALSE(label.PartitionEvenly(0).ok());
  EXPECT_FALSE(label.PartitionEvenly(27).ok());
  EXPECT_TRUE(label.PartitionEvenly(26).ok());
}

TEST(DiskLabelTest, SetPartitionsRejectsOverlap) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  Status s = label.SetPartitions({Partition{"a", 0, 100},
                                  Partition{"b", 50, 100}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DiskLabelTest, SetPartitionsRejectsOutOfRange) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  Status s = label.SetPartitions(
      {Partition{"a", 0, TestGeometry().total_sectors() + 1}});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(DiskLabelTest, SetPartitionsRejectsEmpty) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  EXPECT_FALSE(label.SetPartitions({Partition{"a", 0, 0}}).ok());
  EXPECT_FALSE(label.SetPartitions({Partition{"a", -5, 10}}).ok());
}

TEST(DiskLabelTest, FindPartition) {
  DiskLabel label = DiskLabel::Plain(TestGeometry());
  ASSERT_TRUE(label.PartitionEvenly(2).ok());
  auto a = label.FindPartition("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->first_sector, 0);
  EXPECT_FALSE(label.FindPartition("z").ok());
}

TEST(DiskLabelTest, PaperReservedSizes) {
  // 48 Toshiba cylinders ~ 8 MB (6%); 80 Fujitsu cylinders ~ 50 MB (5%).
  auto toshiba =
      DiskLabel::Rearranged(DriveSpec::ToshibaMK156F().geometry, 48);
  ASSERT_TRUE(toshiba.ok());
  const double toshiba_mb =
      toshiba->reserved_sector_count() * 512.0 / 1e6;
  EXPECT_NEAR(toshiba_mb, 8.4, 0.2);

  auto fujitsu =
      DiskLabel::Rearranged(DriveSpec::FujitsuM2266().geometry, 80);
  ASSERT_TRUE(fujitsu.ok());
  const double fujitsu_mb =
      fujitsu->reserved_sector_count() * 512.0 / 1e6;
  EXPECT_NEAR(fujitsu_mb, 52.2, 0.5);
}

}  // namespace
}  // namespace abr::disk
