#include "disk/track_buffer.h"

#include <gtest/gtest.h>

namespace abr::disk {
namespace {

TEST(TrackBufferTest, DisabledNeverContains) {
  TrackBuffer b(0);
  b.OnMediaRead(100, 16, 1000);
  EXPECT_FALSE(b.Contains(100, 16));
}

TEST(TrackBufferTest, EmptyContainsNothing) {
  TrackBuffer b(64);
  EXPECT_FALSE(b.Contains(0, 1));
}

TEST(TrackBufferTest, ReadAheadExtendsPastRequest) {
  TrackBuffer b(64);
  b.OnMediaRead(100, 16, 1000);
  EXPECT_TRUE(b.Contains(100, 16));
  EXPECT_TRUE(b.Contains(116, 16));  // read-ahead
  EXPECT_TRUE(b.Contains(100, 64));
  EXPECT_FALSE(b.Contains(100, 65));
  EXPECT_FALSE(b.Contains(99, 1));  // before the request
}

TEST(TrackBufferTest, ReadAheadStopsAtCylinderEnd) {
  TrackBuffer b(64);
  b.OnMediaRead(100, 16, /*cylinder_end_sector=*/120);
  EXPECT_TRUE(b.Contains(100, 16));
  EXPECT_TRUE(b.Contains(100, 20));
  EXPECT_FALSE(b.Contains(100, 21));
}

TEST(TrackBufferTest, RequestLargerThanBufferStillBuffered) {
  TrackBuffer b(8);
  b.OnMediaRead(50, 16, 1000);
  // The whole serviced range is retained even beyond nominal capacity.
  EXPECT_TRUE(b.Contains(50, 16));
  EXPECT_FALSE(b.Contains(50, 17));
}

TEST(TrackBufferTest, NewReadReplacesOld) {
  TrackBuffer b(32);
  b.OnMediaRead(0, 8, 1000);
  b.OnMediaRead(500, 8, 1000);
  EXPECT_FALSE(b.Contains(0, 8));
  EXPECT_TRUE(b.Contains(500, 8));
}

TEST(TrackBufferTest, OverlappingWriteInvalidates) {
  TrackBuffer b(32);
  b.OnMediaRead(100, 16, 1000);
  b.OnWrite(110, 4);
  EXPECT_FALSE(b.Contains(100, 4));
}

TEST(TrackBufferTest, DisjointWriteKeepsBuffer) {
  TrackBuffer b(32);
  b.OnMediaRead(100, 16, 1000);
  b.OnWrite(500, 4);
  EXPECT_TRUE(b.Contains(100, 16));
}

TEST(TrackBufferTest, ExplicitInvalidate) {
  TrackBuffer b(32);
  b.OnMediaRead(100, 16, 1000);
  b.Invalidate();
  EXPECT_FALSE(b.Contains(100, 1));
}

}  // namespace
}  // namespace abr::disk
