// Differential tests for FlatRequestQueue::InsertBatch and the scheduler
// EnqueueBatch entry points: a whole-batch sorted-run build must leave the
// queue in exactly the state a sequential Insert loop produces, including
// the FIFO-among-equals tie order (new entries after existing equals,
// batch entries in input order).

#include "sched/flat_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace abr::sched {
namespace {

constexpr std::int64_t kSpc = 128;
constexpr Cylinder kCylinders = 815;

IoRequest Req(std::int64_t id, Cylinder cylinder) {
  IoRequest r;
  r.id = id;
  r.sector = static_cast<SectorNo>(cylinder) * kSpc;
  r.sector_count = 16;
  return r;
}

Cylinder KeyOf(const IoRequest& r) {
  return static_cast<Cylinder>(r.sector / kSpc);
}

/// Drains both queues front to back (smallest key, oldest among equals)
/// and checks identical id sequences.
void ExpectSameDrain(FlatRequestQueue& batched, FlatRequestQueue& serial) {
  ASSERT_EQ(batched.size(), serial.size());
  while (serial.size() > 0) {
    const IoRequest a = batched.Take(batched.FirstLive());
    const IoRequest b = serial.Take(serial.FirstLive());
    ASSERT_EQ(a.id, b.id);
    ASSERT_EQ(a.sector, b.sector);
  }
  EXPECT_EQ(batched.size(), 0u);
}

TEST(FlatQueueBatchTest, BatchMatchesSequentialRandom) {
  Rng rng(0xBA7C);
  for (int round = 0; round < 30; ++round) {
    FlatRequestQueue batched;
    FlatRequestQueue serial;
    // Pre-populate both with the same requests, one by one.
    const std::int64_t pre = static_cast<std::int64_t>(rng.NextBounded(40));
    std::int64_t next_id = 1;
    for (std::int64_t i = 0; i < pre; ++i) {
      const IoRequest r = Req(
          next_id++, static_cast<Cylinder>(rng.NextBounded(kCylinders)));
      batched.Insert(KeyOf(r), r);
      serial.Insert(KeyOf(r), r);
    }
    // Then a batch with duplicate keys (both internal and vs existing).
    std::vector<IoRequest> batch;
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.NextBounded(60));
    Cylinder last = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const Cylinder c = rng.NextBounded(3) == 0
                             ? last
                             : static_cast<Cylinder>(
                                   rng.NextBounded(kCylinders));
      last = c;
      batch.push_back(Req(next_id++, c));
    }
    batched.InsertBatch(batch.data(), batch.size(),
                        [](const IoRequest& r) { return KeyOf(r); });
    for (const IoRequest& r : batch) serial.Insert(KeyOf(r), r);
    ExpectSameDrain(batched, serial);
  }
}

TEST(FlatQueueBatchTest, EmptyAndSingletonBatches) {
  FlatRequestQueue batched;
  FlatRequestQueue serial;
  batched.InsertBatch(nullptr, 0, [](const IoRequest& r) { return KeyOf(r); });
  EXPECT_EQ(batched.size(), 0u);
  const IoRequest one = Req(1, 400);
  batched.InsertBatch(&one, 1, [](const IoRequest& r) { return KeyOf(r); });
  serial.Insert(KeyOf(one), one);
  ExpectSameDrain(batched, serial);
}

TEST(FlatQueueBatchTest, AllEqualKeysKeepInputOrder) {
  FlatRequestQueue batched;
  FlatRequestQueue serial;
  // Existing equals first, then the batch in input order.
  for (std::int64_t id = 1; id <= 5; ++id) {
    const IoRequest r = Req(id, 100);
    batched.Insert(KeyOf(r), r);
    serial.Insert(KeyOf(r), r);
  }
  std::vector<IoRequest> batch;
  for (std::int64_t id = 6; id <= 15; ++id) batch.push_back(Req(id, 100));
  batched.InsertBatch(batch.data(), batch.size(),
                      [](const IoRequest& r) { return KeyOf(r); });
  for (const IoRequest& r : batch) serial.Insert(KeyOf(r), r);
  ExpectSameDrain(batched, serial);
}

/// EnqueueBatch vs an Enqueue loop on every scheduler: identical dequeue
/// order from a moving head, interleaved with further singleton enqueues.
void RunSchedulerBatchDiff(SchedulerKind kind, std::uint64_t seed) {
  std::unique_ptr<Scheduler> batched = MakeScheduler(kind, kSpc);
  std::unique_ptr<Scheduler> serial = MakeScheduler(kind, kSpc);
  Rng rng(seed);
  Cylinder head = 0;
  std::int64_t next_id = 1;
  for (int round = 0; round < 40; ++round) {
    std::vector<IoRequest> batch;
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.NextBounded(25));
    Cylinder last = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const Cylinder c = rng.NextBounded(4) == 0
                             ? last
                             : static_cast<Cylinder>(
                                   rng.NextBounded(kCylinders));
      last = c;
      batch.push_back(Req(next_id++, c));
    }
    batched->EnqueueBatch(batch.data(), batch.size());
    for (const IoRequest& r : batch) serial->Enqueue(r);
    // Drain a few, so later batches merge into a live backlog.
    const std::int64_t drains = rng.NextBounded(
        static_cast<std::uint64_t>(batch.size() + 1));
    for (std::int64_t i = 0; i < drains; ++i) {
      const std::optional<IoRequest> got = batched->Dequeue(head);
      const std::optional<IoRequest> want = serial->Dequeue(head);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (!got.has_value()) break;
      ASSERT_EQ(got->id, want->id) << "round " << round;
      head = static_cast<Cylinder>(got->sector / kSpc);
    }
    ASSERT_EQ(batched->size(), serial->size());
  }
  while (true) {
    const std::optional<IoRequest> got = batched->Dequeue(head);
    const std::optional<IoRequest> want = serial->Dequeue(head);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (!got.has_value()) break;
    ASSERT_EQ(got->id, want->id);
    head = static_cast<Cylinder>(got->sector / kSpc);
  }
}

class SchedulerBatchDiffTest
    : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerBatchDiffTest, BatchMatchesLoop) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunSchedulerBatchDiff(GetParam(), seed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SchedulerBatchDiffTest,
                         ::testing::Values(SchedulerKind::kFcfs,
                                           SchedulerKind::kSstf,
                                           SchedulerKind::kScan,
                                           SchedulerKind::kCLook),
                         [](const auto& info) {
                           switch (info.param) {
                             case SchedulerKind::kFcfs:
                               return "Fcfs";
                             case SchedulerKind::kSstf:
                               return "Sstf";
                             case SchedulerKind::kScan:
                               return "Scan";
                             default:
                               return "CLook";
                           }
                         });

}  // namespace
}  // namespace abr::sched
