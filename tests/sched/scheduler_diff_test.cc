// Differential tests: the flat sorted-run schedulers against their
// multimap oracles (scheduler_ref.h, the pre-rewrite implementations).
// Both sides consume identical randomized interleavings of enqueues and
// dequeues — with duplicate cylinders, moving heads, and empty-queue
// probes — and must emit identical service orders throughout.

#include "sched/scheduler_ref.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace abr::sched {
namespace {

constexpr std::int64_t kSpc = 128;  // sectors per cylinder in these tests
constexpr Cylinder kCylinders = 815;  // Toshiba geometry's cylinder count

IoRequest Req(std::int64_t id, Cylinder cylinder) {
  IoRequest r;
  r.id = id;
  r.sector = static_cast<SectorNo>(cylinder) * kSpc;
  r.sector_count = 16;
  return r;
}

/// Feeds the same randomized interleaving to the production scheduler and
/// its oracle; every dequeue must return the same request id (or agree the
/// queue is empty). `duplicate_every` forces repeated cylinder keys so the
/// FIFO-among-equals tie-break is exercised, not just the ordering.
void RunInterleaving(SchedulerKind kind, std::uint64_t seed,
                     std::int64_t steps, std::uint64_t duplicate_every) {
  std::unique_ptr<Scheduler> flat = MakeScheduler(kind, kSpc);
  std::unique_ptr<Scheduler> ref = MakeRefScheduler(kind, kSpc);
  Rng rng(seed);
  Cylinder head = 0;
  Cylinder last_cylinder = 0;
  std::int64_t next_id = 1;
  for (std::int64_t step = 0; step < steps; ++step) {
    // Bias toward enqueue so the queues reach interesting depths, but keep
    // draining often enough that both directions of every policy run.
    if (rng.NextBounded(5) < 3) {
      const Cylinder cylinder =
          duplicate_every != 0 && rng.NextBounded(duplicate_every) == 0
              ? last_cylinder
              : static_cast<Cylinder>(rng.NextBounded(kCylinders));
      last_cylinder = cylinder;
      const IoRequest request = Req(next_id++, cylinder);
      flat->Enqueue(request);
      ref->Enqueue(request);
    } else {
      const std::optional<IoRequest> got = flat->Dequeue(head);
      const std::optional<IoRequest> want = ref->Dequeue(head);
      ASSERT_EQ(got.has_value(), want.has_value()) << "at step " << step;
      if (got.has_value()) {
        ASSERT_EQ(got->id, want->id) << "at step " << step;
        head = static_cast<Cylinder>(got->sector / kSpc);
      }
    }
    ASSERT_EQ(flat->size(), ref->size()) << "at step " << step;
  }
  // Drain both to empty: the tail order must agree too, and both must
  // report empty at the same probe.
  while (true) {
    const std::optional<IoRequest> got = flat->Dequeue(head);
    const std::optional<IoRequest> want = ref->Dequeue(head);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (!got.has_value()) break;
    ASSERT_EQ(got->id, want->id);
    head = static_cast<Cylinder>(got->sector / kSpc);
  }
  EXPECT_EQ(flat->size(), 0u);
}

class SchedulerDiffTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerDiffTest, RandomInterleavings) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunInterleaving(GetParam(), seed, 4000, /*duplicate_every=*/4);
  }
}

TEST_P(SchedulerDiffTest, AllDuplicateCylinders) {
  // Every enqueue reuses the previous cylinder: long runs of equal keys,
  // so the service order is decided purely by the FIFO tie-break.
  RunInterleaving(GetParam(), /*seed=*/99, 2000, /*duplicate_every=*/1);
}

TEST_P(SchedulerDiffTest, DeepQueueTombstonePath) {
  // Enough backlog that the flat queue's lazy-deletion branch (tombstone
  // plus compaction) runs, not just the near-tail in-place erase.
  std::unique_ptr<Scheduler> flat = MakeScheduler(GetParam(), kSpc);
  std::unique_ptr<Scheduler> ref = MakeRefScheduler(GetParam(), kSpc);
  Rng rng(7);
  for (std::int64_t id = 1; id <= 3000; ++id) {
    const IoRequest request =
        Req(id, static_cast<Cylinder>(rng.NextBounded(kCylinders)));
    flat->Enqueue(request);
    ref->Enqueue(request);
  }
  Cylinder head = 0;
  while (flat->size() > 0) {
    const std::optional<IoRequest> got = flat->Dequeue(head);
    const std::optional<IoRequest> want = ref->Dequeue(head);
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(want.has_value());
    ASSERT_EQ(got->id, want->id);
    head = static_cast<Cylinder>(got->sector / kSpc);
  }
  EXPECT_FALSE(ref->Dequeue(head).has_value());
}

TEST_P(SchedulerDiffTest, EmptyQueueEdges) {
  std::unique_ptr<Scheduler> flat = MakeScheduler(GetParam(), kSpc);
  std::unique_ptr<Scheduler> ref = MakeRefScheduler(GetParam(), kSpc);
  EXPECT_FALSE(flat->Dequeue(0).has_value());
  EXPECT_FALSE(ref->Dequeue(0).has_value());
  // Fill/drain cycles across empty: state carried over an empty queue
  // (SCAN's sweep direction) must match, as must slab-slot recycling.
  Cylinder head = 400;
  std::int64_t next_id = 1;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (Cylinder c : {Cylinder{700}, Cylinder{100}, Cylinder{100},
                       Cylinder{400}, Cylinder{0}, Cylinder{814}}) {
      const IoRequest request = Req(next_id++, c);
      flat->Enqueue(request);
      ref->Enqueue(request);
    }
    while (flat->size() > 0) {
      const std::optional<IoRequest> got = flat->Dequeue(head);
      const std::optional<IoRequest> want = ref->Dequeue(head);
      ASSERT_TRUE(got.has_value() && want.has_value());
      ASSERT_EQ(got->id, want->id);
      head = static_cast<Cylinder>(got->sector / kSpc);
    }
    EXPECT_FALSE(flat->Dequeue(head).has_value());
    EXPECT_FALSE(ref->Dequeue(head).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SchedulerDiffTest,
                         ::testing::Values(SchedulerKind::kSstf,
                                           SchedulerKind::kScan,
                                           SchedulerKind::kCLook),
                         [](const auto& info) {
                           switch (info.param) {
                             case SchedulerKind::kSstf:
                               return "Sstf";
                             case SchedulerKind::kScan:
                               return "Scan";
                             default:
                               return "CLook";
                           }
                         });

}  // namespace
}  // namespace abr::sched
