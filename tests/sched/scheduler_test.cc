#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace abr::sched {
namespace {

constexpr std::int64_t kSpc = 128;  // sectors per cylinder in these tests

IoRequest Req(std::int64_t id, Cylinder cylinder) {
  IoRequest r;
  r.id = id;
  r.sector = static_cast<SectorNo>(cylinder) * kSpc;
  r.sector_count = 16;
  return r;
}

TEST(FcfsSchedulerTest, ServesInArrivalOrder) {
  FcfsScheduler s(kSpc);
  s.Enqueue(Req(1, 50));
  s.Enqueue(Req(2, 10));
  s.Enqueue(Req(3, 90));
  EXPECT_EQ(s.Dequeue(0)->id, 1);
  EXPECT_EQ(s.Dequeue(0)->id, 2);
  EXPECT_EQ(s.Dequeue(0)->id, 3);
  EXPECT_FALSE(s.Dequeue(0).has_value());
}

TEST(SstfSchedulerTest, PicksClosest) {
  SstfScheduler s(kSpc);
  s.Enqueue(Req(1, 10));
  s.Enqueue(Req(2, 45));
  s.Enqueue(Req(3, 90));
  EXPECT_EQ(s.Dequeue(40)->id, 2);
  EXPECT_EQ(s.Dequeue(45)->id, 1);  // 35 away vs 45 away
  EXPECT_EQ(s.Dequeue(10)->id, 3);
}

TEST(SstfSchedulerTest, ExactHeadPosition) {
  SstfScheduler s(kSpc);
  s.Enqueue(Req(1, 20));
  s.Enqueue(Req(2, 30));
  EXPECT_EQ(s.Dequeue(30)->id, 2);
}

TEST(ScanSchedulerTest, SweepsUpThenDown) {
  ScanScheduler s(kSpc);
  for (Cylinder c : {30, 10, 50, 70}) {
    s.Enqueue(Req(c, c));
  }
  // Head at 40, initial direction up: 50, 70, then reverse: 30, 10.
  EXPECT_EQ(s.Dequeue(40)->id, 50);
  EXPECT_EQ(s.Dequeue(50)->id, 70);
  EXPECT_EQ(s.Dequeue(70)->id, 30);
  EXPECT_EQ(s.Dequeue(30)->id, 10);
}

TEST(ScanSchedulerTest, ServicesCurrentCylinder) {
  ScanScheduler s(kSpc);
  s.Enqueue(Req(1, 40));
  EXPECT_EQ(s.Dequeue(40)->id, 1);  // zero-distance request served first
}

TEST(ScanSchedulerTest, ReversesWhenNothingAhead) {
  ScanScheduler s(kSpc);
  s.Enqueue(Req(1, 5));
  EXPECT_EQ(s.Dequeue(80)->id, 1);
}

TEST(ScanSchedulerTest, NewArrivalsJoinSweep) {
  ScanScheduler s(kSpc);
  s.Enqueue(Req(1, 60));
  EXPECT_EQ(s.Dequeue(50)->id, 1);
  // While at 60, a request behind arrives; sweep continues up first.
  s.Enqueue(Req(2, 55));
  s.Enqueue(Req(3, 65));
  EXPECT_EQ(s.Dequeue(60)->id, 3);
  EXPECT_EQ(s.Dequeue(65)->id, 2);
}

TEST(ScanSchedulerTest, EqualCylinderFifo) {
  ScanScheduler s(kSpc);
  s.Enqueue(Req(1, 40));
  s.Enqueue(Req(2, 40));
  EXPECT_EQ(s.Dequeue(40)->id, 1);
  EXPECT_EQ(s.Dequeue(40)->id, 2);
}

TEST(CLookSchedulerTest, AscendingWithWrap) {
  CLookScheduler s(kSpc);
  for (Cylinder c : {30, 10, 50}) s.Enqueue(Req(c, c));
  EXPECT_EQ(s.Dequeue(40)->id, 50);
  EXPECT_EQ(s.Dequeue(50)->id, 10);  // wrap to lowest
  EXPECT_EQ(s.Dequeue(10)->id, 30);
}

TEST(SchedulerKindTest, NamesAndFactory) {
  for (SchedulerKind kind :
       {SchedulerKind::kFcfs, SchedulerKind::kSstf, SchedulerKind::kScan,
        SchedulerKind::kCLook}) {
    auto s = MakeScheduler(kind, kSpc);
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->name(), SchedulerKindName(kind));
  }
}

class AllSchedulersTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(AllSchedulersTest, ServesEveryRequestExactlyOnce) {
  auto s = MakeScheduler(GetParam(), kSpc);
  Rng rng(99);
  std::set<std::int64_t> expected;
  for (std::int64_t i = 0; i < 200; ++i) {
    IoRequest r = Req(i, static_cast<Cylinder>(rng.NextBounded(100)));
    s->Enqueue(r);
    expected.insert(i);
  }
  Cylinder head = 0;
  std::set<std::int64_t> served;
  while (auto r = s->Dequeue(head)) {
    EXPECT_TRUE(served.insert(r->id).second) << "duplicate id " << r->id;
    head = static_cast<Cylinder>(r->sector / kSpc);
  }
  EXPECT_EQ(served, expected);
  EXPECT_TRUE(s->empty());
}

TEST_P(AllSchedulersTest, InterleavedEnqueueDequeue) {
  auto s = MakeScheduler(GetParam(), kSpc);
  Rng rng(7);
  std::size_t queued = 0;
  std::size_t enqueued = 0;
  std::size_t served = 0;
  Cylinder head = 0;
  for (int round = 0; round < 1000; ++round) {
    if (queued == 0 || rng.NextBernoulli(0.6)) {
      s->Enqueue(Req(round, static_cast<Cylinder>(rng.NextBounded(100))));
      ++queued;
      ++enqueued;
    } else {
      auto r = s->Dequeue(head);
      ASSERT_TRUE(r.has_value());
      head = static_cast<Cylinder>(r->sector / kSpc);
      --queued;
      ++served;
    }
    EXPECT_EQ(s->size(), queued);
  }
  while (s->Dequeue(head)) ++served;
  EXPECT_EQ(served, enqueued);
  EXPECT_TRUE(s->empty());
}

TEST_P(AllSchedulersTest, EmptyDequeueReturnsNothing) {
  auto s = MakeScheduler(GetParam(), kSpc);
  EXPECT_FALSE(s->Dequeue(0).has_value());
  EXPECT_TRUE(s->empty());
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllSchedulersTest,
                         ::testing::Values(SchedulerKind::kFcfs,
                                           SchedulerKind::kSstf,
                                           SchedulerKind::kScan,
                                           SchedulerKind::kCLook),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case SchedulerKind::kFcfs:
                               return "Fcfs";
                             case SchedulerKind::kSstf:
                               return "Sstf";
                             case SchedulerKind::kScan:
                               return "Scan";
                             case SchedulerKind::kCLook:
                               return "CLook";
                           }
                           return "Unknown";
                         });

TEST(ScanPropertyTest, SweepNeverReversesWithWorkAhead) {
  // Property: with a static queue, SCAN's service order is a single
  // up-sweep followed by a single down-sweep.
  ScanScheduler s(kSpc);
  Rng rng(1234);
  for (std::int64_t i = 0; i < 100; ++i) {
    s.Enqueue(Req(i, static_cast<Cylinder>(rng.NextBounded(200))));
  }
  Cylinder head = 100;
  std::vector<Cylinder> order;
  while (auto r = s.Dequeue(head)) {
    head = static_cast<Cylinder>(r->sector / kSpc);
    order.push_back(head);
  }
  // Find the peak; before it the order must be nondecreasing, after it
  // nonincreasing.
  auto peak = std::max_element(order.begin(), order.end());
  EXPECT_TRUE(std::is_sorted(order.begin(), peak + 1));
  EXPECT_TRUE(std::is_sorted(peak, order.end(), std::greater<Cylinder>()));
}

}  // namespace
}  // namespace abr::sched
