#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace abr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextExponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // Child and parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == child.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, CopyReproducesSequence) {
  Rng a(37);
  a.Next64();
  Rng b = a;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

}  // namespace
}  // namespace abr
