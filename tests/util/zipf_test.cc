#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace abr {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0;
  for (std::int64_t k = 0; k < z.n(); ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneNonIncreasing) {
  ZipfSampler z(50, 1.2);
  for (std::int64_t k = 1; k < z.n(); ++k) {
    EXPECT_GE(z.Pmf(k - 1), z.Pmf(k));
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::int64_t k = 0; k < z.n(); ++k) {
    EXPECT_NEAR(z.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, CdfIsOneAtEnd) {
  ZipfSampler z(17, 0.9);
  EXPECT_DOUBLE_EQ(z.Cdf(z.n() - 1), 1.0);
}

TEST(ZipfTest, SingleItem) {
  ZipfSampler z(1, 2.0);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(z.Sample(rng), 0);
  EXPECT_DOUBLE_EQ(z.Pmf(0), 1.0);
}

TEST(ZipfTest, KnownRatioTheta1) {
  // With theta = 1, P(0)/P(1) = 2.
  ZipfSampler z(1000, 1.0);
  EXPECT_NEAR(z.Pmf(0) / z.Pmf(1), 2.0, 1e-9);
}

TEST(ZipfTest, SamplesRespectRankOrdering) {
  ZipfSampler z(20, 1.1);
  Rng rng(41);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(rng)];
  // Rank 0 strictly more popular than rank 5, which beats rank 15.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[15]);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfSampler z(8, 0.8);
  Rng rng(43);
  std::vector<int> counts(8, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (std::int64_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), z.Pmf(k), 0.01);
  }
}

class ZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaTest, HeadMassGrowsWithTheta) {
  const double theta = GetParam();
  ZipfSampler z(1000, theta);
  // Top-10 mass must be a valid probability and grow with skew; sanity
  // bound: uniform gives exactly 0.01.
  const double top10 = z.Cdf(9);
  EXPECT_GE(top10, 0.01 - 1e-12);
  EXPECT_LE(top10, 1.0);
  if (theta > 0.0) EXPECT_GT(top10, 0.01);
}

TEST_P(ZipfThetaTest, SamplesInRange) {
  ZipfSampler z(123, GetParam());
  Rng rng(47);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t s = z.Sample(rng);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 123);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 1.5,
                                           2.0));

}  // namespace
}  // namespace abr
