#include "util/table.h"

#include <gtest/gtest.h>

namespace abr {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| bb "), std::string::npos);
  EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(TableTest, PadsToWidestCell) {
  Table t({"x"});
  t.AddRow({"wide-cell-content"});
  t.AddRow({"y"});
  const std::string out = t.ToString();
  // The narrow row must be padded to the wide cell's width.
  EXPECT_NE(out.find("| y                 |"), std::string::npos);
}

TEST(TableTest, SeparatorEmitsRule) {
  Table t({"h"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // header rule + top + separator + bottom = 4 rules
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableTest, FmtDouble) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fmt(2.0, 0), "2");
  EXPECT_EQ(Table::Fmt(-1.5, 1), "-1.5");
}

TEST(TableTest, FmtInt) {
  EXPECT_EQ(Table::Fmt(static_cast<std::int64_t>(0)), "0");
  EXPECT_EQ(Table::Fmt(static_cast<std::int64_t>(-42)), "-42");
  EXPECT_EQ(Table::Fmt(static_cast<std::int64_t>(123456789)), "123456789");
}

}  // namespace
}  // namespace abr
