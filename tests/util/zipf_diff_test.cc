// Differential test of the alias-method ZipfSampler against the retained
// inverse-CDF reference implementation (zipf_ref.h): the two must agree
// exactly on the distribution itself (Pmf/Cdf) and statistically on the
// sampled stream — a chi-squared goodness-of-fit of alias-method draws
// against the reference's exact probabilities.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"
#include "util/zipf_ref.h"

namespace abr {
namespace {

struct DiffCase {
  std::int64_t n;
  double theta;
  std::uint64_t seed;
};

class ZipfDiffTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ZipfDiffTest, PmfAndCdfIdenticalToReference) {
  const DiffCase c = GetParam();
  ZipfSampler alias(c.n, c.theta);
  ZipfSamplerRef ref(c.n, c.theta);
  ASSERT_EQ(alias.n(), ref.n());
  for (std::int64_t k = 0; k < c.n; ++k) {
    // The pmf/cdf math is untouched by the alias rewrite: exact equality.
    ASSERT_DOUBLE_EQ(alias.Pmf(k), ref.Pmf(k)) << "rank " << k;
    ASSERT_DOUBLE_EQ(alias.Cdf(k), ref.Cdf(k)) << "rank " << k;
  }
}

TEST_P(ZipfDiffTest, ChiSquaredAgainstReferenceDistribution) {
  const DiffCase c = GetParam();
  ZipfSampler alias(c.n, c.theta);
  ZipfSamplerRef ref(c.n, c.theta);

  // Pool the tail so every cell has a healthy expected count: cells are
  // individual head ranks while expected >= 25, then one pooled tail.
  const std::int64_t draws = 200000;
  std::vector<std::int64_t> head;
  double head_mass = 0;
  for (std::int64_t k = 0; k < c.n; ++k) {
    if (ref.Pmf(k) * static_cast<double>(draws) < 25.0) break;
    head.push_back(k);
    head_mass += ref.Pmf(k);
  }
  ASSERT_GE(head.size(), 3u) << "case too small for a chi-squared test";

  std::vector<std::int64_t> counts(head.size() + 1, 0);
  Rng rng(c.seed);
  for (std::int64_t i = 0; i < draws; ++i) {
    const std::int64_t s = alias.Sample(rng);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, c.n);
    counts[s < static_cast<std::int64_t>(head.size())
               ? static_cast<std::size_t>(s)
               : head.size()] += 1;
  }

  double chi2 = 0;
  for (std::size_t i = 0; i <= head.size(); ++i) {
    const double expected =
        static_cast<double>(draws) *
        (i < head.size() ? ref.Pmf(static_cast<std::int64_t>(i))
                         : 1.0 - head_mass);
    if (expected <= 0) {
      ASSERT_EQ(counts[i], 0);
      continue;
    }
    const double d = static_cast<double>(counts[i]) - expected;
    chi2 += d * d / expected;
  }

  // dof = cells - 1. The 99.9th percentile of chi-squared is roughly
  // dof + 4 * sqrt(2 * dof) + 11 for the dof range used here; a fixed
  // seeded stream makes this deterministic, the margin guards against a
  // genuinely wrong alias table, which inflates chi2 by orders of
  // magnitude.
  const double dof = static_cast<double>(head.size());
  const double limit = dof + 4.0 * std::sqrt(2.0 * dof) + 11.0;
  EXPECT_LT(chi2, limit) << "dof=" << dof;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ZipfDiffTest,
    ::testing::Values(DiffCase{100, 0.8, 101}, DiffCase{100, 1.2, 102},
                      DiffCase{1000, 1.0, 103}, DiffCase{1000, 1.8, 104},
                      DiffCase{5000, 0.6, 105}, DiffCase{64, 0.0, 106}));

}  // namespace
}  // namespace abr
