#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace abr {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::future<std::string> f = pool.Submit([]() { return std::string("ok"); });
  EXPECT_EQ(f.get(), "ok");
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4, /*queue_capacity=*/8);  // queue much smaller than load
  constexpr int kTasks = 500;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  long long want = 0;
  for (int i = 0; i < kTasks; ++i) want += 1LL * i * i;
  EXPECT_EQ(sum, want);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  std::vector<std::future<void>> futures;
  // Two tasks that can only finish once both have started: deadlocks
  // unless the pool really runs them on distinct threads.
  for (int i = 0; i < 2; ++i) {
    futures.push_back(pool.Submit([&]() {
      started.fetch_add(1);
      while (!release.load()) {
        if (started.load() >= 2) release.store(true);
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(started.load(), 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&ran]() { ran.fetch_add(1); }));
    }
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 50);
  }
  for (auto& f : futures) f.get();  // none may hold a broken promise
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([]() { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, ShutdownWakesProducerBlockedOnFullQueue) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<bool> release{false};
  // Occupy the single worker and fill the queue so the next Submit blocks
  // on back-pressure.
  std::future<void> busy = pool.Submit([&release]() {
    while (!release.load()) std::this_thread::yield();
  });
  std::future<void> queued = pool.Submit([]() {});

  std::atomic<bool> producer_threw{false};
  std::atomic<bool> producer_ran{false};
  std::thread producer([&]() {
    try {
      (void)pool.Submit([&producer_ran]() { producer_ran.store(true); });
    } catch (const std::runtime_error&) {
      producer_threw.store(true);
    }
  });
  // Give the producer time to block inside Submit, then shut down while
  // it waits: it must either land the task (accepted before shutdown) or
  // throw — never hang.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.store(true);
  pool.Shutdown();
  producer.join();
  busy.get();
  queued.get();
  EXPECT_TRUE(producer_threw.load() || producer_ran.load());
}

TEST(ThreadPoolTest, PoolSurvivesThrowingTasks) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        pool.Submit([]() { throw std::runtime_error("task failure"); }));
  }
  for (auto& f : futures) EXPECT_THROW(f.get(), std::runtime_error);
  // The workers must still be alive and accepting work.
  EXPECT_EQ(pool.Submit([]() { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, ShutdownFromAnotherThreadDrainsBehindBusyWorkers) {
  ThreadPool pool(2, /*queue_capacity=*/32);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  // Gate both workers, then queue work behind them.
  for (int i = 0; i < 2; ++i) {
    futures.push_back(pool.Submit([&]() {
      while (!release.load()) std::this_thread::yield();
      ran.fetch_add(1);
    }));
  }
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&ran]() { ran.fetch_add(1); }));
  }
  std::thread closer([&pool]() { pool.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  closer.join();  // Shutdown drains everything already queued
  EXPECT_EQ(ran.load(), 22);
  for (auto& f : futures) f.get();
}

TEST(ThreadPoolTest, DestructorJoinsWithoutShutdownCall) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      (void)pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace abr
