#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace abr {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::future<std::string> f = pool.Submit([]() { return std::string("ok"); });
  EXPECT_EQ(f.get(), "ok");
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4, /*queue_capacity=*/8);  // queue much smaller than load
  constexpr int kTasks = 500;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  long long want = 0;
  for (int i = 0; i < kTasks; ++i) want += 1LL * i * i;
  EXPECT_EQ(sum, want);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  std::vector<std::future<void>> futures;
  // Two tasks that can only finish once both have started: deadlocks
  // unless the pool really runs them on distinct threads.
  for (int i = 0; i < 2; ++i) {
    futures.push_back(pool.Submit([&]() {
      started.fetch_add(1);
      while (!release.load()) {
        if (started.load() >= 2) release.store(true);
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(started.load(), 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&ran]() { ran.fetch_add(1); }));
    }
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 50);
  }
  for (auto& f : futures) f.get();  // none may hold a broken promise
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([]() { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, DestructorJoinsWithoutShutdownCall) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      (void)pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace abr
