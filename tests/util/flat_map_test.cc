#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "util/rng.h"

namespace abr {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap64<std::uint32_t> m;
  EXPECT_TRUE(m.Insert(10, 1));
  EXPECT_TRUE(m.Insert(20, 2));
  EXPECT_FALSE(m.Insert(10, 3));  // duplicate keeps the original
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find(10), nullptr);
  EXPECT_EQ(*m.Find(10), 1u);
  EXPECT_EQ(m.Find(30), nullptr);
  EXPECT_TRUE(m.Erase(10));
  EXPECT_FALSE(m.Erase(10));
  EXPECT_EQ(m.Find(10), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, ValueIsMutableThroughFind) {
  FlatMap64<std::uint32_t> m;
  m.Insert(5, 1);
  *m.Find(5) = 99;
  EXPECT_EQ(*m.Find(5), 99u);
}

TEST(FlatMapTest, GrowsPastInitialCapacity) {
  FlatMap64<std::uint32_t> m(4);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(m.Insert(k, static_cast<std::uint32_t>(k * 7)));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), static_cast<std::uint32_t>(k * 7));
  }
}

TEST(FlatMapTest, ClearKeepsTableUsable) {
  FlatMap64<std::uint32_t> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.Insert(k, 1);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(50), nullptr);
  EXPECT_TRUE(m.Insert(50, 2));
  EXPECT_EQ(*m.Find(50), 2u);
}

// The backward-shift deletion must keep every probe chain intact under
// arbitrary interleavings — checked against std::unordered_map on dense
// keys (maximum collision pressure after the mix) and random ops.
TEST(FlatMapTest, RandomOpsMatchUnorderedMapOracle) {
  FlatMap64<std::uint32_t> m;
  std::unordered_map<std::uint64_t, std::uint32_t> oracle;
  Rng rng(0xF1A7);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng.NextBounded(512);  // dense: many collisions
    switch (rng.NextBounded(3)) {
      case 0: {
        const std::uint32_t value = static_cast<std::uint32_t>(op);
        EXPECT_EQ(m.Insert(key, value), oracle.emplace(key, value).second);
        break;
      }
      case 1:
        EXPECT_EQ(m.Erase(key), oracle.erase(key) > 0);
        break;
      default: {
        auto it = oracle.find(key);
        const std::uint32_t* found = m.Find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(m.size(), oracle.size());
  }
}

}  // namespace
}  // namespace abr
