#include "util/status.h"

#include <gtest/gtest.h>

namespace abr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::ResourceExhausted("e"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::FailedPrecondition("f"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Corruption("g"), StatusCode::kCorruption, "Corruption"},
      {Status::IoError("h"), StatusCode::kIoError, "IoError"},
      {Status::Unimplemented("i"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Busy("j"), StatusCode::kBusy, "Busy"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("missing widget");
  EXPECT_EQ(s.ToString(), "NotFound: missing widget");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Busy("x"));
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad bits");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kCorruption);
  EXPECT_EQ(t.message(), "bad bits");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2};
  v->push_back(3);
  EXPECT_EQ(v.value().size(), 3u);
}

Status Helper(bool fail) {
  ABR_RETURN_IF_ERROR(fail ? Status::Busy("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kBusy);
}

}  // namespace
}  // namespace abr
