// Model-based randomized test of the driver's data-integrity invariant:
// whatever sequence of writes, block moves (DKIOCBCOPY), clean-outs
// (DKIOCCLEAN), reboots and crashes occurs, reading a logical block always
// returns the last data written to it.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "disk/drive_spec.h"
#include "driver/adaptive_driver.h"
#include "util/rng.h"

namespace abr::driver {
namespace {

constexpr std::int32_t kBlocks = 64;  // logical blocks exercised

class DriverFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    Rebuild(/*after_crash=*/false);
  }

  void Rebuild(bool after_crash) {
    driver_.reset();
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    DriverConfig config;
    config.block_table_capacity = 16;
    driver_ = std::make_unique<AdaptiveDriver>(disk_.get(), std::move(*label),
                                               config, &store_);
    ASSERT_TRUE(driver_->Attach(after_crash).ok());
  }

  /// Physical sector currently holding the block's data.
  SectorNo ResolvedSector(BlockNo block) {
    auto extents = driver_->MapVirtualExtent(block * 16, 16);
    EXPECT_EQ(extents.size(), 1u);  // aligned geometry: never straddles
    if (auto reloc = driver_->block_table().Lookup(extents[0].sector)) {
      return *reloc;
    }
    return extents[0].sector;
  }

  /// Models an application write: a driver write request (sets the dirty
  /// bit when redirected) plus the payload stamp at the resolved location.
  void WriteBlock(BlockNo block, std::uint64_t tag) {
    ASSERT_TRUE(driver_
                    ->SubmitBlock(0, block, sched::IoType::kWrite,
                                  driver_->now())
                    .ok());
    driver_->Drain();
    const SectorNo at = ResolvedSector(block);
    for (int i = 0; i < 16; ++i) {
      disk_->WritePayload(at + i, tag + static_cast<std::uint64_t>(i));
    }
    model_[block] = tag;
  }

  /// Checks every written block's content against the model.
  void VerifyAll() {
    for (const auto& [block, tag] : model_) {
      const SectorNo at = ResolvedSector(block);
      for (int i = 0; i < 16; ++i) {
        ASSERT_EQ(disk_->ReadPayload(at + i),
                  tag + static_cast<std::uint64_t>(i))
            << "block " << block << " sector offset " << i;
      }
    }
  }

  std::unique_ptr<disk::Disk> disk_;
  InMemoryTableStore store_;
  std::unique_ptr<AdaptiveDriver> driver_;
  std::unordered_map<BlockNo, std::uint64_t> model_;
};

TEST_P(DriverFuzzTest, DataIntegrityUnderRandomOperations) {
  Rng rng(GetParam());
  std::uint64_t next_tag = 0x1000;

  // Seed every block with known content.
  for (BlockNo b = 0; b < kBlocks; ++b) {
    WriteBlock(b, next_tag);
    next_tag += 0x100;
  }
  VerifyAll();

  for (int step = 0; step < 300; ++step) {
    const double r = rng.NextDouble();
    if (r < 0.5) {
      // Overwrite a random block.
      WriteBlock(static_cast<BlockNo>(rng.NextBounded(kBlocks)), next_tag);
      next_tag += 0x100;
    } else if (r < 0.75) {
      // Try to move a random block into a random free slot.
      const BlockNo block = static_cast<BlockNo>(rng.NextBounded(kBlocks));
      auto extents = driver_->MapVirtualExtent(block * 16, 16);
      const std::int32_t slot = static_cast<std::int32_t>(
          rng.NextBounded(
              static_cast<std::uint64_t>(driver_->reserved_slot_count())));
      // May fail (occupied/duplicate/full) — failure must be harmless.
      (void)driver_->IoctlCopyBlock(extents[0].sector,
                                    driver_->ReservedSlotSector(slot));
      driver_->Drain();
    } else if (r < 0.85) {
      ASSERT_TRUE(driver_->IoctlClean().ok());
      driver_->Drain();
    } else if (r < 0.95) {
      // Crash: lose the in-memory dirty bits; recovery must stay safe.
      Rebuild(/*after_crash=*/true);
    } else {
      // Clean reboot: a proper shutdown persists the dirty bits.
      ASSERT_TRUE(driver_->Detach().ok());
      Rebuild(/*after_crash=*/false);
    }
    VerifyAll();
  }

  // Final clean: everything returns home and still matches.
  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  EXPECT_EQ(driver_->block_table().size(), 0);
  VerifyAll();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace abr::driver
