// Randomized differential test of the translation fast path: two drivers
// over identical disks — one with the presence filter + last-translation
// cache (production), one taking the direct move-chain and FlatMap64
// probes on every request (the oracle) — are driven through the same
// randomized sequence of block I/O, raw I/O, DKIOCBCOPY, DKIOCCLEAN,
// clean reboots and crash re-attaches. Every observable must stay
// bit-identical at every step: request outcomes, simulated time, block
// table contents, the request-monitoring table, and the full performance
// histograms. The fast path is allowed to change wall-clock only.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "disk/drive_spec.h"
#include "driver/adaptive_driver.h"
#include "util/rng.h"

namespace abr::driver {
namespace {

constexpr std::int32_t kBlocks = 64;       // logical blocks exercised
constexpr std::int32_t kBlockSectors = 16; // TestDrive block size

/// Flattens a PerfSnapshot into an exactly comparable integer vector.
std::vector<std::int64_t> PerfFingerprint(const PerfSnapshot& s) {
  std::vector<std::int64_t> fp;
  for (const PerfSide* side : {&s.reads, &s.writes, &s.all}) {
    for (std::int64_t c : side->fcfs_seek_distance.counts()) fp.push_back(c);
    fp.push_back(-1);
    for (std::int64_t c : side->sched_seek_distance.counts()) fp.push_back(c);
    fp.push_back(-1);
    fp.push_back(side->service_time.count());
    fp.push_back(side->service_time.total());
    fp.push_back(side->queue_time.count());
    fp.push_back(side->queue_time.total());
    fp.push_back(side->rotation_total);
    fp.push_back(side->transfer_total);
    fp.push_back(side->buffer_hits);
  }
  fp.push_back(s.faults.media_errors);
  fp.push_back(s.faults.retries);
  fp.push_back(s.faults.failed_requests);
  fp.push_back(s.faults.aborted_chains);
  fp.push_back(s.faults.recovery_dirtied);
  fp.push_back(s.faults.recovery_fallbacks);
  return fp;
}

/// One driver + its private disk and table store. Both instances see the
/// same operations; only `fast_path` differs.
struct Instance {
  std::unique_ptr<disk::Disk> disk;
  InMemoryTableStore store;
  std::unique_ptr<AdaptiveDriver> driver;
  bool fast_path = false;

  void Rebuild(bool after_crash) {
    driver.reset();
    auto label = disk::DiskLabel::Rearranged(disk->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    DriverConfig config;
    config.block_table_capacity = 16;
    config.translation_fast_path = fast_path;
    driver = std::make_unique<AdaptiveDriver>(disk.get(), std::move(*label),
                                              config, &store);
    ASSERT_TRUE(driver->Attach(after_crash).ok());
  }
};

class TranslationFastPathTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    fast_.fast_path = true;
    slow_.fast_path = false;
    for (Instance* inst : {&fast_, &slow_}) {
      inst->disk = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
      inst->Rebuild(/*after_crash=*/false);
    }
  }

  /// Compares every cheap observable; called after each step.
  void CheckStep() {
    ASSERT_EQ(fast_.driver->now(), slow_.driver->now());
    ASSERT_EQ(fast_.driver->held_request_count(),
              slow_.driver->held_request_count());
    ASSERT_EQ(fast_.driver->internal_io_count(),
              slow_.driver->internal_io_count());
    ASSERT_EQ(fast_.driver->internal_io_time(),
              slow_.driver->internal_io_time());
    const auto& fe = fast_.driver->block_table().entries();
    const auto& se = slow_.driver->block_table().entries();
    ASSERT_EQ(fe.size(), se.size());
    for (std::size_t i = 0; i < fe.size(); ++i) {
      ASSERT_EQ(fe[i].original, se[i].original) << "entry " << i;
      ASSERT_EQ(fe[i].relocated, se[i].relocated) << "entry " << i;
      ASSERT_EQ(fe[i].dirty, se[i].dirty) << "entry " << i;
    }
  }

  /// Compares the expensive observables (drains both monitors).
  void CheckDeep() {
    const std::vector<RequestRecord> fr = fast_.driver->IoctlReadRequests();
    const std::vector<RequestRecord> sr = slow_.driver->IoctlReadRequests();
    ASSERT_EQ(fr.size(), sr.size());
    for (std::size_t i = 0; i < fr.size(); ++i) {
      ASSERT_EQ(fr[i].device, sr[i].device) << "record " << i;
      ASSERT_EQ(fr[i].block, sr[i].block) << "record " << i;
      ASSERT_EQ(fr[i].size_bytes, sr[i].size_bytes) << "record " << i;
      ASSERT_EQ(fr[i].type, sr[i].type) << "record " << i;
    }
    ASSERT_EQ(PerfFingerprint(fast_.driver->IoctlReadStats()),
              PerfFingerprint(slow_.driver->IoctlReadStats()));
  }

  Instance fast_;
  Instance slow_;
};

TEST_P(TranslationFastPathTest, BitIdenticalUnderRandomOperations) {
  Rng rng(GetParam());
  Micros t = 0;

  for (int step = 0; step < 400; ++step) {
    const double r = rng.NextDouble();
    t += 1 + static_cast<Micros>(rng.NextBounded(5000));
    if (r < 0.45) {
      // Block-interface request; repeated blocks exercise the cache.
      const BlockNo block = static_cast<BlockNo>(rng.NextBounded(kBlocks));
      const sched::IoType type = rng.NextBernoulli(0.3)
                                     ? sched::IoType::kWrite
                                     : sched::IoType::kRead;
      const Status fs = fast_.driver->SubmitBlock(0, block, type, t);
      const Status ss = slow_.driver->SubmitBlock(0, block, type, t);
      ASSERT_EQ(fs.ToString(), ss.ToString());
    } else if (r < 0.6) {
      // Raw request, possibly spanning block boundaries (physio split).
      const SectorNo sector = static_cast<SectorNo>(
          rng.NextBounded(kBlocks * kBlockSectors - 1));
      const std::int64_t count = 1 + static_cast<std::int64_t>(
          rng.NextBounded(3 * kBlockSectors));
      const sched::IoType type = rng.NextBernoulli(0.3)
                                     ? sched::IoType::kWrite
                                     : sched::IoType::kRead;
      const Status fs = fast_.driver->SubmitRaw(0, sector, count, type, t);
      const Status ss = slow_.driver->SubmitRaw(0, sector, count, type, t);
      ASSERT_EQ(fs.ToString(), ss.ToString());
    } else if (r < 0.72) {
      // Copy a random block into a random reserved slot. May legitimately
      // fail (occupied / duplicate / table full) — identically on both.
      const BlockNo block = static_cast<BlockNo>(rng.NextBounded(kBlocks));
      auto extents =
          fast_.driver->MapVirtualExtent(block * kBlockSectors, kBlockSectors);
      ASSERT_EQ(extents.size(), 1u);
      const std::int32_t slot = static_cast<std::int32_t>(rng.NextBounded(
          static_cast<std::uint64_t>(fast_.driver->reserved_slot_count())));
      const Status fs = fast_.driver->IoctlCopyBlock(
          extents[0].sector, fast_.driver->ReservedSlotSector(slot));
      const Status ss = slow_.driver->IoctlCopyBlock(
          extents[0].sector, slow_.driver->ReservedSlotSector(slot));
      ASSERT_EQ(fs.ToString(), ss.ToString());
    } else if (r < 0.8) {
      // Busy when a previous clean is still pumping — identically on both.
      const Status fs = fast_.driver->IoctlClean();
      const Status ss = slow_.driver->IoctlClean();
      ASSERT_EQ(fs.ToString(), ss.ToString());
    } else if (r < 0.88) {
      // Let queued work complete before comparing.
      fast_.driver->Drain();
      slow_.driver->Drain();
      CheckDeep();
    } else if (r < 0.94) {
      // Crash: both drivers lose their in-memory dirty bits and recover
      // conservatively from their stores.
      fast_.driver->Drain();
      slow_.driver->Drain();
      fast_.Rebuild(/*after_crash=*/true);
      slow_.Rebuild(/*after_crash=*/true);
      t = 0;
    } else {
      // Clean reboot through Detach().
      ASSERT_TRUE(fast_.driver->Detach().ok());
      ASSERT_TRUE(slow_.driver->Detach().ok());
      fast_.Rebuild(/*after_crash=*/false);
      slow_.Rebuild(/*after_crash=*/false);
      t = 0;
    }
    CheckStep();
  }

  fast_.driver->Drain();
  slow_.driver->Drain();
  CheckStep();
  CheckDeep();

  // Final clean-out must retire every entry on both sides.
  ASSERT_TRUE(fast_.driver->IoctlClean().ok());
  ASSERT_TRUE(slow_.driver->IoctlClean().ok());
  fast_.driver->Drain();
  slow_.driver->Drain();
  EXPECT_EQ(fast_.driver->block_table().size(), 0);
  EXPECT_EQ(slow_.driver->block_table().size(), 0);
  CheckStep();
  CheckDeep();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationFastPathTest,
                         ::testing::Values(7, 11, 19, 23, 42, 1993));

}  // namespace
}  // namespace abr::driver
