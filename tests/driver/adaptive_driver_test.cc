#include "driver/adaptive_driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/drive_spec.h"
#include "fault/crash_table_store.h"
#include "fault/fault_plan.h"
#include "fault/faulty_disk.h"

namespace abr::driver {
namespace {

using sched::IoType;

// Test drive: 100 cylinders x 4 tracks x 32 sectors = 12800 sectors;
// 8 KB blocks = 16 sectors; 128 sectors per cylinder (block aligned).
// Rearranged label hides 10 cylinders: physical cylinders 45..54.
class AdaptiveDriverTest : public ::testing::Test {
 protected:
  static constexpr std::int32_t kBlockSectors = 16;

  void Build(bool attach = true, bool after_crash = false) {
    if (!disk_) {
      disk_ = std::make_unique<disk::Disk>(disk::DriveSpec::TestDrive());
    }
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    DriverConfig config;
    config.block_size_bytes = 8192;
    config.block_table_capacity = 32;
    config.request_monitor_capacity = 1 << 12;
    driver_ = std::make_unique<AdaptiveDriver>(disk_.get(), std::move(*label),
                                               config, &store_);
    if (attach) {
      ASSERT_TRUE(driver_->Attach(after_crash).ok());
    }
  }

  /// Fresh driver instance on the same disk + store (a "reboot").
  void Reboot(bool after_crash) {
    driver_.reset();
    Build(/*attach=*/true, after_crash);
  }

  /// Original physical start sector of logical block `b` on device 0.
  SectorNo OriginalOf(BlockNo b) {
    auto extents = driver_->MapVirtualExtent(b * kBlockSectors,
                                             kBlockSectors);
    EXPECT_EQ(extents.size(), 1u);
    return extents[0].sector;
  }

  /// Stamps recognizable payloads on the block's original sectors.
  void Stamp(SectorNo start, std::uint64_t tag) {
    for (int i = 0; i < kBlockSectors; ++i) {
      disk_->WritePayload(start + i, tag + static_cast<std::uint64_t>(i));
    }
  }

  bool HasStamp(SectorNo start, std::uint64_t tag) {
    for (int i = 0; i < kBlockSectors; ++i) {
      if (disk_->ReadPayload(start + i) !=
          tag + static_cast<std::uint64_t>(i)) {
        return false;
      }
    }
    return true;
  }

  std::unique_ptr<disk::Disk> disk_;
  InMemoryTableStore store_;
  std::unique_ptr<AdaptiveDriver> driver_;
};

TEST_F(AdaptiveDriverTest, SubmitBeforeAttachFails) {
  Build(/*attach=*/false);
  EXPECT_EQ(driver_->SubmitBlock(0, 0, IoType::kRead, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(AdaptiveDriverTest, DoubleAttachFails) {
  Build();
  EXPECT_EQ(driver_->Attach().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AdaptiveDriverTest, AttachRearrangedWithoutStoreFails) {
  disk::Disk disk(disk::DriveSpec::TestDrive());
  auto label = disk::DiskLabel::Rearranged(disk.geometry(), 10);
  ASSERT_TRUE(label.ok());
  AdaptiveDriver driver(&disk, std::move(*label), DriverConfig{},
                        /*store=*/nullptr);
  EXPECT_EQ(driver.Attach().code(), StatusCode::kInvalidArgument);
}

TEST_F(AdaptiveDriverTest, PlainDiskNeedsNoStore) {
  disk::Disk disk(disk::DriveSpec::TestDrive());
  disk::DiskLabel label = disk::DiskLabel::Plain(disk.geometry());
  AdaptiveDriver driver(&disk, label, DriverConfig{}, nullptr);
  ASSERT_TRUE(driver.Attach().ok());
  EXPECT_TRUE(driver.SubmitBlock(0, 5, IoType::kRead, 0).ok());
  driver.Drain();
}

TEST_F(AdaptiveDriverTest, MapVirtualExtentSkipsHiddenRegion) {
  Build();
  const SectorNo boundary = 45 * 128;
  // Before the boundary: identity.
  auto before = driver_->MapVirtualExtent(0, 16);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].sector, 0);
  // After: shifted by the hidden region.
  auto after = driver_->MapVirtualExtent(boundary, 16);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].sector, boundary + 10 * 128);
  // Straddling extent splits in two.
  auto split = driver_->MapVirtualExtent(boundary - 8, 16);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].sector, boundary - 8);
  EXPECT_EQ(split[0].count, 8);
  EXPECT_EQ(split[1].sector, boundary + 10 * 128);
  EXPECT_EQ(split[1].count, 8);
}

TEST_F(AdaptiveDriverTest, SubmitValidation) {
  Build();
  EXPECT_EQ(driver_->SubmitBlock(5, 0, IoType::kRead, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(driver_->SubmitBlock(0, -1, IoType::kRead, 0).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(driver_->SubmitBlock(0, 1 << 20, IoType::kRead, 0).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(driver_->SubmitRaw(0, -1, 16, IoType::kRead, 0).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(driver_->SubmitRaw(0, 0, 0, IoType::kRead, 0).code(),
            StatusCode::kOutOfRange);
}

TEST_F(AdaptiveDriverTest, ReservedSlotGeometry) {
  Build();
  // Table: 24 + 32*16 = 536 bytes -> 2 sectors.
  EXPECT_EQ(driver_->table_area_sectors(), 2);
  EXPECT_EQ(driver_->reserved_data_first_sector(), 45 * 128 + 2);
  // (1280 - 2) / 16 = 79 slots, capped by table capacity 32.
  EXPECT_EQ(driver_->reserved_slot_count(), 32);
  EXPECT_EQ(driver_->ReservedSlotSector(0), 45 * 128 + 2);
  EXPECT_EQ(driver_->ReservedSlotSector(1), 45 * 128 + 18);
  EXPECT_EQ(driver_->ReservedSlotCylinder(0), 45);
}

TEST_F(AdaptiveDriverTest, CopyBlockMovesDataAndCostsThreeIos) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();
  EXPECT_EQ(driver_->internal_io_count(), 3);  // read + write + table
  EXPECT_TRUE(HasStamp(target, 0x700));
  EXPECT_EQ(driver_->block_table().Lookup(original).value(), target);
  // The on-disk image was updated.
  auto image = store_.Load();
  ASSERT_TRUE(image.has_value());
  auto loaded = BlockTable::Deserialize(*image, 32);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Lookup(original).value(), target);
}

TEST_F(AdaptiveDriverTest, CopyBlockValidation) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  // Target not on the slot grid.
  EXPECT_EQ(driver_->IoctlCopyBlock(original, target + 1).code(),
            StatusCode::kInvalidArgument);
  // Target outside the reserved area.
  EXPECT_EQ(driver_->IoctlCopyBlock(original, 0).code(),
            StatusCode::kInvalidArgument);
  // Original inside the reserved area.
  EXPECT_EQ(driver_->IoctlCopyBlock(target, target).code(),
            StatusCode::kInvalidArgument);
  // Original out of the disk.
  EXPECT_EQ(
      driver_->IoctlCopyBlock(disk_->geometry().total_sectors(), target)
          .code(),
      StatusCode::kOutOfRange);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();
  // Occupied target and already-rearranged block.
  EXPECT_EQ(driver_->IoctlCopyBlock(OriginalOf(8), target).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(driver_->IoctlCopyBlock(original,
                                    driver_->ReservedSlotSector(1))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(AdaptiveDriverTest, ReadOfRearrangedBlockGoesToReservedRegion) {
  Build();
  const SectorNo original = OriginalOf(7);  // cylinder 0
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(original, driver_->ReservedSlotSector(0)).ok());
  driver_->Drain();
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
  // The head finished in the reserved region, not at the original cylinder.
  EXPECT_EQ(disk_->head_cylinder(), 45);
}

TEST_F(AdaptiveDriverTest, ReadOfNormalBlockUnaffected) {
  Build();
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, 0).ok());
  driver_->Drain();
  EXPECT_EQ(disk_->head_cylinder(), 0);
}

TEST_F(AdaptiveDriverTest, WriteMarksEntryDirtyAndCleanCopiesBack) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();

  // A write is redirected to the reserved copy; model the data plane by
  // stamping the relocated sectors with the new contents.
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 7, IoType::kWrite, driver_->now()).ok());
  driver_->Drain();
  Stamp(target, 0xBEEF00);
  ASSERT_TRUE(driver_->block_table().LookupEntry(original)->dirty);

  const std::int64_t ios_before = driver_->internal_io_count();
  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  // Dirty move-out: read relocated + write original + table write.
  EXPECT_EQ(driver_->internal_io_count() - ios_before, 3);
  EXPECT_EQ(driver_->block_table().size(), 0);
  EXPECT_TRUE(HasStamp(original, 0xBEEF00));
}

TEST_F(AdaptiveDriverTest, CleanOfCleanBlockCostsOneIo) {
  Build();
  const SectorNo original = OriginalOf(7);
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(original, driver_->ReservedSlotSector(0)).ok());
  driver_->Drain();
  const std::int64_t ios_before = driver_->internal_io_count();
  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  EXPECT_EQ(driver_->internal_io_count() - ios_before, 1);  // table only
  EXPECT_EQ(driver_->block_table().size(), 0);
}

TEST_F(AdaptiveDriverTest, CleanEmptyTableIsNoOp) {
  Build();
  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  EXPECT_EQ(driver_->internal_io_count(), 0);
}

TEST_F(AdaptiveDriverTest, RequestsForMovingBlockAreHeld) {
  Build();
  const SectorNo original = OriginalOf(7);
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(original, driver_->ReservedSlotSector(0)).ok());
  // Move I/O still in flight; a request for the block must be delayed.
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, driver_->now()).ok());
  EXPECT_EQ(driver_->held_request_count(), 1u);
  driver_->Drain();
  EXPECT_EQ(driver_->held_request_count(), 0u);
  // The held read was released and serviced from the reserved region.
  EXPECT_EQ(disk_->head_cylinder(), 45);
  const PerfSnapshot stats = driver_->IoctlReadStats();
  EXPECT_EQ(stats.reads.count(), 1);
  // Its queueing time includes the move delay.
  EXPECT_GT(stats.reads.queue_time.MeanMillis(), 0.0);
}

TEST_F(AdaptiveDriverTest, RequestsForOtherBlocksInterleaveWithMove) {
  Build();
  ASSERT_TRUE(driver_
                  ->IoctlCopyBlock(OriginalOf(7),
                                   driver_->ReservedSlotSector(0))
                  .ok());
  ASSERT_TRUE(driver_->SubmitBlock(0, 20, IoType::kRead, driver_->now()).ok());
  EXPECT_EQ(driver_->held_request_count(), 0u);  // different block: not held
  driver_->Drain();
  EXPECT_EQ(driver_->IoctlReadStats().reads.count(), 1);
}

TEST_F(AdaptiveDriverTest, CrashRecoveryMarksAllDirtyAndPreservesUpdates) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();
  // Update the relocated copy; the in-memory dirty bit is set but the
  // on-disk table still says "clean" (the paper's stale-dirty-bit case).
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 7, IoType::kWrite, driver_->now()).ok());
  driver_->Drain();
  Stamp(target, 0xCAFE00);

  // Crash: new driver instance, conservative recovery.
  Reboot(/*after_crash=*/true);
  ASSERT_EQ(driver_->block_table().size(), 1);
  EXPECT_TRUE(driver_->block_table().LookupEntry(original)->dirty);

  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  // The update survived the crash because recovery assumed dirty.
  EXPECT_TRUE(HasStamp(original, 0xCAFE00));
}

TEST_F(AdaptiveDriverTest, DetachPersistsDirtyBits) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();
  // Dirty the relocated copy; the on-disk table still says clean.
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 7, IoType::kWrite, driver_->now()).ok());
  driver_->Drain();
  Stamp(target, 0xFEED00);

  // Clean shutdown persists the dirty bit, so a plain (non-crash) attach
  // still copies the update back on clean-out.
  ASSERT_TRUE(driver_->Detach().ok());
  Reboot(/*after_crash=*/false);
  ASSERT_TRUE(driver_->block_table().LookupEntry(original)->dirty);
  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  EXPECT_TRUE(HasStamp(original, 0xFEED00));
}

TEST_F(AdaptiveDriverTest, DetachRequiresAttach) {
  Build(/*attach=*/false);
  EXPECT_EQ(driver_->Detach().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AdaptiveDriverTest, ReattachAfterDetach) {
  Build();
  ASSERT_TRUE(driver_->Detach().ok());
  ASSERT_TRUE(driver_->Attach().ok());
  EXPECT_TRUE(driver_->SubmitBlock(0, 3, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
}

TEST_F(AdaptiveDriverTest, RebootWithoutCrashKeepsStoredDirtyBits) {
  Build();
  const SectorNo original = OriginalOf(7);
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(original, driver_->ReservedSlotSector(0)).ok());
  driver_->Drain();
  Reboot(/*after_crash=*/false);
  ASSERT_EQ(driver_->block_table().size(), 1);
  EXPECT_FALSE(driver_->block_table().LookupEntry(original)->dirty);
}

TEST_F(AdaptiveDriverTest, AttachRejectsCorruptTable) {
  Build();
  ASSERT_TRUE(driver_
                  ->IoctlCopyBlock(OriginalOf(7),
                                   driver_->ReservedSlotSector(0))
                  .ok());
  driver_->Drain();
  ASSERT_TRUE(store_.CorruptByte(30));  // inside the single entry's bytes
  driver_.reset();
  Build(/*attach=*/false);
  EXPECT_EQ(driver_->Attach().code(), StatusCode::kCorruption);
}

TEST_F(AdaptiveDriverTest, PhysioSplitsRawRequests) {
  Build();
  // A raw extent spanning parts of three blocks -> three sub-requests.
  ASSERT_TRUE(driver_->SubmitRaw(0, 8, 32, IoType::kRead, 0).ok());
  driver_->Drain();
  const PerfSnapshot stats = driver_->IoctlReadStats();
  EXPECT_EQ(stats.reads.count(), 3);
}

TEST_F(AdaptiveDriverTest, RawFragmentOfRearrangedBlockRedirected) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();
  disk_->MoveHeadTo(0);
  // Sectors 4..8 of block 7 = partition sectors 7*16+4 .. +8.
  ASSERT_TRUE(
      driver_->SubmitRaw(0, 7 * 16 + 4, 4, IoType::kRead, driver_->now())
          .ok());
  driver_->Drain();
  EXPECT_EQ(disk_->head_cylinder(), 45);  // served from the reserved region
}

TEST_F(AdaptiveDriverTest, RawWholeBlockSingleRequest) {
  Build();
  ASSERT_TRUE(driver_->SubmitRaw(0, 64, 16, IoType::kRead, 0).ok());
  driver_->Drain();
  EXPECT_EQ(driver_->IoctlReadStats().reads.count(), 1);
}

TEST_F(AdaptiveDriverTest, FcfsDistancesUseOriginalAddresses) {
  Build();
  const SectorNo original = OriginalOf(0);  // block 0, cylinder 0
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(original, driver_->ReservedSlotSector(0)).ok());
  driver_->Drain();
  driver_->IoctlReadStats();  // clear

  // Read the rearranged block (original cylinder 0), then a block on
  // virtual cylinder 80 (physical 90 after the skip).
  ASSERT_TRUE(driver_->SubmitBlock(0, 0, IoType::kRead, driver_->now()).ok());
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 80 * 8, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
  const PerfSnapshot stats = driver_->IoctlReadStats();
  ASSERT_EQ(stats.reads.fcfs_seek_distance.count(), 1);
  // FCFS distance = |90 - 0| from *original* addresses, even though the
  // first request was actually served at cylinder 45.
  EXPECT_DOUBLE_EQ(stats.reads.fcfs_seek_distance.Mean(), 90.0);
}

TEST_F(AdaptiveDriverTest, GeometryIoctl) {
  Build();
  const auto info = driver_->IoctlGetGeometry();
  EXPECT_TRUE(info.rearranged);
  EXPECT_EQ(info.virtual_geometry.cylinders, 90);
  EXPECT_EQ(info.reserved_first_cylinder, 45);
  EXPECT_EQ(info.reserved_cylinder_count, 10);
  EXPECT_EQ(info.block_size_bytes, 8192);
}

TEST_F(AdaptiveDriverTest, GeometryIoctlPlainDisk) {
  disk::Disk disk(disk::DriveSpec::TestDrive());
  disk::DiskLabel label = disk::DiskLabel::Plain(disk.geometry());
  AdaptiveDriver driver(&disk, label, DriverConfig{}, nullptr);
  ASSERT_TRUE(driver.Attach().ok());
  const auto info = driver.IoctlGetGeometry();
  EXPECT_FALSE(info.rearranged);
  EXPECT_EQ(info.virtual_geometry.cylinders, 100);
}

TEST_F(AdaptiveDriverTest, RequestMonitorRecordsLogicalBlocks) {
  Build();
  ASSERT_TRUE(driver_->SubmitBlock(0, 42, IoType::kWrite, 0).ok());
  ASSERT_TRUE(driver_->SubmitBlock(0, 43, IoType::kRead, 0).ok());
  driver_->Drain();
  auto records = driver_->IoctlReadRequests();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].block, 42);
  EXPECT_EQ(records[0].type, IoType::kWrite);
  EXPECT_EQ(records[1].block, 43);
  EXPECT_EQ(records[0].size_bytes, 8192);
}

TEST_F(AdaptiveDriverTest, InternalIoExcludedFromStats) {
  Build();
  ASSERT_TRUE(driver_
                  ->IoctlCopyBlock(OriginalOf(7),
                                   driver_->ReservedSlotSector(0))
                  .ok());
  driver_->Drain();
  const PerfSnapshot stats = driver_->IoctlReadStats();
  EXPECT_EQ(stats.all.count(), 0);
  EXPECT_TRUE(driver_->IoctlReadRequests().empty());
  EXPECT_GT(driver_->internal_io_time(), 0);
}

// Straddling geometry: 34 sectors/track * 4 tracks = 136 sectors/cylinder,
// not a multiple of 16, so some blocks cross the hidden-region boundary.
class StraddlingDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<disk::Disk>(
        disk::DriveSpec::TestDrive(100, 4, 34));
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    DriverConfig config;
    config.block_table_capacity = 32;
    driver_ = std::make_unique<AdaptiveDriver>(disk_.get(), std::move(*label),
                                               config, &store_);
    ASSERT_TRUE(driver_->Attach().ok());
  }

  std::unique_ptr<disk::Disk> disk_;
  InMemoryTableStore store_;
  std::unique_ptr<AdaptiveDriver> driver_;
};

TEST_F(StraddlingDriverTest, StraddlingBlockServedAsTwoRequests) {
  // Boundary at 45 * 136 = 6120; block 382 covers sectors 6112..6127.
  const BlockNo straddler = 382;
  auto extents = driver_->MapVirtualExtent(straddler * 16, 16);
  ASSERT_EQ(extents.size(), 2u);
  ASSERT_TRUE(
      driver_->SubmitBlock(0, straddler, IoType::kRead, 0).ok());
  driver_->Drain();
  EXPECT_EQ(driver_->IoctlReadStats().reads.count(), 2);
}

TEST_F(StraddlingDriverTest, StraddlingBlockIneligibleForCopy) {
  // Its "original" would overlap the reserved region.
  EXPECT_FALSE(driver_
                   ->IoctlCopyBlock(382 * 16,
                                    driver_->reserved_data_first_sector())
                   .ok());
}

/// Collects every completion forwarded to the client sink.
struct RecordingSink : public sim::CompletionSink {
  void OnIoComplete(const sim::CompletedIo& done) override {
    completions.push_back(done);
  }
  std::vector<sim::CompletedIo> completions;
};

// Fault-path tests: same machine as AdaptiveDriverTest but the disk is a
// fault::FaultyDisk and the table store models torn saves.
class FaultyDriverTest : public ::testing::Test {
 protected:
  static constexpr std::int32_t kBlockSectors = 16;

  void Build(fault::FaultPlan plan, bool after_crash = false) {
    if (!disk_) {
      disk_ = std::make_unique<fault::FaultyDisk>(
          disk::DriveSpec::TestDrive(), std::move(plan), /*seed=*/7);
    }
    auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
    ASSERT_TRUE(label.ok());
    ASSERT_TRUE(label->PartitionEvenly(1).ok());
    DriverConfig config;
    config.block_size_bytes = 8192;
    config.block_table_capacity = 32;
    config.request_monitor_capacity = 1 << 12;
    driver_ = std::make_unique<AdaptiveDriver>(disk_.get(), std::move(*label),
                                               config, &store_);
    driver_->set_client_sink(&sink_);
    disk_->set_table_observer(&store_);
    ASSERT_TRUE(driver_->Attach(after_crash).ok());
    // The table footprint is computed at attach time.
    disk_->SetTableArea(label_first(), driver_->table_area_sectors());
  }

  SectorNo label_first() const { return 45 * 128; }

  SectorNo OriginalOf(BlockNo b) {
    auto extents =
        driver_->MapVirtualExtent(b * kBlockSectors, kBlockSectors);
    EXPECT_EQ(extents.size(), 1u);
    return extents[0].sector;
  }

  void Stamp(SectorNo start, std::uint64_t tag) {
    for (int i = 0; i < kBlockSectors; ++i) {
      disk_->WritePayload(start + i, tag + static_cast<std::uint64_t>(i));
    }
  }

  bool HasStamp(SectorNo start, std::uint64_t tag) {
    for (int i = 0; i < kBlockSectors; ++i) {
      if (disk_->ReadPayload(start + i) !=
          tag + static_cast<std::uint64_t>(i)) {
        return false;
      }
    }
    return true;
  }

  std::unique_ptr<fault::FaultyDisk> disk_;
  fault::CrashTableStore store_;
  RecordingSink sink_;
  std::unique_ptr<AdaptiveDriver> driver_;
};

TEST_F(FaultyDriverTest, TransientErrorRetriedToSuccess) {
  fault::FaultPlan plan;
  // Block 7 lives at sectors 112..127; one marginal sector, heals after
  // a single failure — inside the driver's retry budget.
  plan.media.push_back(fault::MediaFault{/*first=*/115, /*count=*/1,
                                         /*persistent=*/false,
                                         /*fail_budget=*/1,
                                         /*arm_after_io=*/0});
  Build(std::move(plan));
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, 0).ok());
  driver_->Drain();

  ASSERT_EQ(sink_.completions.size(), 1u);
  EXPECT_TRUE(sink_.completions[0].breakdown.ok());
  const FaultCounters faults = driver_->IoctlReadStats().faults;
  EXPECT_EQ(faults.media_errors, 1);
  EXPECT_EQ(faults.retries, 1);
  EXPECT_EQ(faults.failed_requests, 0);
}

TEST_F(FaultyDriverTest, PersistentErrorReportedAfterRetryBudget) {
  fault::FaultPlan plan;
  plan.media.push_back(fault::MediaFault{/*first=*/112, /*count=*/2,
                                         /*persistent=*/true,
                                         /*fail_budget=*/1,
                                         /*arm_after_io=*/0});
  Build(std::move(plan));
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kWrite, 0).ok());
  driver_->Drain();

  ASSERT_EQ(sink_.completions.size(), 1u);
  EXPECT_FALSE(sink_.completions[0].breakdown.ok());
  EXPECT_EQ(sink_.completions[0].breakdown.media,
            disk::MediaStatus::kPersistentError);
  const FaultCounters faults = driver_->IoctlReadStats().faults;
  EXPECT_EQ(faults.failed_requests, 1);
  // Persistent errors are not worth retrying: the request fails at once.
  EXPECT_EQ(faults.retries, 0);
  EXPECT_EQ(faults.media_errors, 1);
}

TEST_F(FaultyDriverTest, PersistentErrorAbortsCopyChainAndRollsBack) {
  fault::FaultPlan plan;
  // The first reserved slot is permanently bad: the copy's write leg can
  // never land, so the chain must abort and remove the inserted entry.
  Build(fault::FaultPlan{});
  const SectorNo original = OriginalOf(7);
  const SectorNo target = driver_->ReservedSlotSector(0);
  // Inject the defect on the slot now that the geometry is known.
  fault::FaultPlan bad;
  bad.media.push_back(fault::MediaFault{target, /*count=*/1,
                                        /*persistent=*/true,
                                        /*fail_budget=*/1,
                                        /*arm_after_io=*/0});
  driver_ = nullptr;
  disk_ = nullptr;
  store_ = fault::CrashTableStore{};
  sink_.completions.clear();
  Build(std::move(bad));

  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, target).ok());
  driver_->Drain();

  const FaultCounters faults = driver_->IoctlReadStats().faults;
  EXPECT_EQ(faults.aborted_chains, 1);
  // Rollback: the table does not advertise the failed copy, the original
  // data is untouched, and the block is readable at its original address.
  EXPECT_FALSE(driver_->block_table().Lookup(original).has_value());
  EXPECT_TRUE(HasStamp(original, 0x700));
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
  ASSERT_FALSE(sink_.completions.empty());
  EXPECT_TRUE(sink_.completions.back().breakdown.ok());
}

TEST_F(FaultyDriverTest, TornTableSaveFallsBackToDurableImage) {
  Build(fault::FaultPlan{});
  const SectorNo orig7 = OriginalOf(7);
  const SectorNo orig9 = OriginalOf(9);
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(orig7, driver_->ReservedSlotSector(0)).ok());
  driver_->Drain();
  ASSERT_TRUE(
      driver_->IoctlCopyBlock(orig9, driver_->ReservedSlotSector(1)).ok());
  driver_->Drain();
  ASSERT_EQ(store_.commits(), 2);

  // A later save is torn mid-write by a crash: only a header fragment of
  // the new image reaches the platter.
  store_.Save(std::vector<std::uint8_t>(64, 0xEE));
  store_.OnTableWriteTorn(0.1);
  ASSERT_TRUE(store_.torn());

  driver_.reset();
  auto label = disk::DiskLabel::Rearranged(disk_->geometry(), 10);
  ASSERT_TRUE(label.ok());
  ASSERT_TRUE(label->PartitionEvenly(1).ok());
  DriverConfig config;
  config.block_table_capacity = 32;
  driver_ = std::make_unique<AdaptiveDriver>(disk_.get(), std::move(*label),
                                             config, &store_);

  // A plain attach refuses the corrupt image; a crash attach falls back to
  // the last durable image and conservatively dirties everything.
  EXPECT_EQ(driver_->Attach(/*after_crash=*/false).code(),
            StatusCode::kCorruption);
  ASSERT_TRUE(driver_->Attach(/*after_crash=*/true).ok());
  EXPECT_EQ(driver_->block_table().size(), 2);
  EXPECT_TRUE(driver_->block_table().LookupEntry(orig7)->dirty);
  EXPECT_TRUE(driver_->block_table().LookupEntry(orig9)->dirty);
  EXPECT_EQ(driver_->IoctlReadStats().faults.recovery_fallbacks, 1);
}

TEST_F(AdaptiveDriverTest, CleanAfterCrashCopiesAllDirtyBlocksBack) {
  // Satellite of the crash work: DKIOCCLEAN after a crash must copy every
  // conservatively-dirtied block back with its latest contents.
  Build();
  const SectorNo orig7 = OriginalOf(7);
  const SectorNo orig9 = OriginalOf(9);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  const SectorNo slot1 = driver_->ReservedSlotSector(1);
  Stamp(orig7, 0x700);
  Stamp(orig9, 0x900);
  ASSERT_TRUE(driver_->IoctlCopyBlock(orig7, slot0).ok());
  ASSERT_TRUE(driver_->IoctlCopyBlock(orig9, slot1).ok());
  driver_->Drain();

  // Updates land on the relocated copies only.
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 7, IoType::kWrite, driver_->now()).ok());
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 9, IoType::kWrite, driver_->now()).ok());
  driver_->Drain();
  Stamp(slot0, 0xA700);
  Stamp(slot1, 0xA900);

  // Crash (no Detach): the new instance distrusts every on-disk dirty bit.
  Reboot(/*after_crash=*/true);
  ASSERT_EQ(driver_->block_table().size(), 2);

  ASSERT_TRUE(driver_->IoctlClean().ok());
  driver_->Drain();
  EXPECT_EQ(driver_->block_table().size(), 0);
  // The post-crash copy-back preserved the updated payloads, fingerprinted
  // sector by sector.
  EXPECT_TRUE(HasStamp(orig7, 0xA700));
  EXPECT_TRUE(HasStamp(orig9, 0xA900));
  // And reads now resolve to the originals.
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
}

TEST_F(AdaptiveDriverTest, MoveBlockShufflesWithinRegionAndCostsThreeIos) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  const SectorNo slot1 = driver_->ReservedSlotSector(1);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, slot0).ok());
  driver_->Drain();
  const std::int64_t ios_before = driver_->internal_io_count();

  ASSERT_TRUE(driver_->IoctlMoveBlock(original, slot1).ok());
  driver_->Drain();
  EXPECT_EQ(driver_->internal_io_count() - ios_before, 3);  // read+write+table
  EXPECT_TRUE(HasStamp(slot1, 0x700));
  EXPECT_EQ(driver_->block_table().Lookup(original).value(), slot1);
  EXPECT_EQ(driver_->IoctlReadStats().moves.shuffles, 1);

  // The on-disk image followed the shuffle.
  auto image = store_.Load();
  ASSERT_TRUE(image.has_value());
  auto loaded = BlockTable::Deserialize(*image, 32);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Lookup(original).value(), slot1);

  // Reads of the block now land on the new slot.
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
}

TEST_F(AdaptiveDriverTest, MoveBlockPreservesDirtyBit) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  const SectorNo slot1 = driver_->ReservedSlotSector(1);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, slot0).ok());
  driver_->Drain();
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 7, IoType::kWrite, driver_->now()).ok());
  driver_->Drain();
  Stamp(slot0, 0xA700);  // the redirected write's new payload
  ASSERT_TRUE(driver_->block_table().LookupEntry(original)->dirty);

  ASSERT_TRUE(driver_->IoctlMoveBlock(original, slot1).ok());
  driver_->Drain();
  // The dirty bit travels with the entry, so a later clean-out still
  // copies the updated payload back to the original location.
  ASSERT_TRUE(driver_->block_table().LookupEntry(original)->dirty);
  ASSERT_TRUE(driver_->IoctlEvictBlock(original).ok());
  driver_->Drain();
  EXPECT_FALSE(driver_->block_table().Lookup(original).has_value());
  EXPECT_TRUE(HasStamp(original, 0xA700));
}

TEST_F(AdaptiveDriverTest, MoveBlockValidation) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  const SectorNo slot1 = driver_->ReservedSlotSector(1);
  // Not rearranged yet.
  EXPECT_EQ(driver_->IoctlMoveBlock(original, slot1).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, slot0).ok());
  ASSERT_TRUE(driver_->IoctlCopyBlock(OriginalOf(9), slot1).ok());
  driver_->Drain();
  // Target off the slot grid / outside the region.
  EXPECT_EQ(driver_->IoctlMoveBlock(original, slot1 + 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(driver_->IoctlMoveBlock(original, 0).code(),
            StatusCode::kInvalidArgument);
  // Already at the target.
  EXPECT_EQ(driver_->IoctlMoveBlock(original, slot0).code(),
            StatusCode::kInvalidArgument);
  // Target occupied by another entry.
  EXPECT_EQ(driver_->IoctlMoveBlock(original, slot1).code(),
            StatusCode::kAlreadyExists);
  // A block whose move is still in flight is busy.
  ASSERT_TRUE(
      driver_->IoctlMoveBlock(original, driver_->ReservedSlotSector(2)).ok());
  EXPECT_EQ(
      driver_->IoctlMoveBlock(original, driver_->ReservedSlotSector(3)).code(),
      StatusCode::kBusy);
  // And its in-flight target slot is reserved against other claims.
  EXPECT_EQ(driver_->IoctlCopyBlock(OriginalOf(11),
                                    driver_->ReservedSlotSector(2))
                .code(),
            StatusCode::kAlreadyExists);
  driver_->Drain();
}

TEST_F(AdaptiveDriverTest, EvictBlockRemovesSingleEntry) {
  Build();
  const SectorNo orig7 = OriginalOf(7);
  const SectorNo orig9 = OriginalOf(9);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  const SectorNo slot1 = driver_->ReservedSlotSector(1);
  Stamp(orig7, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(orig7, slot0).ok());
  ASSERT_TRUE(driver_->IoctlCopyBlock(orig9, slot1).ok());
  driver_->Drain();
  const std::int64_t ios_before = driver_->internal_io_count();

  // Clean entry: the original still holds current bytes, so eviction is
  // just the table write.
  ASSERT_TRUE(driver_->IoctlEvictBlock(orig7).ok());
  driver_->Drain();
  EXPECT_EQ(driver_->internal_io_count() - ios_before, 1);
  EXPECT_FALSE(driver_->block_table().Lookup(orig7).has_value());
  // The other entry is untouched — unlike DKIOCCLEAN, which empties all.
  EXPECT_TRUE(driver_->block_table().Lookup(orig9).has_value());
  EXPECT_TRUE(HasStamp(orig7, 0x700));
  EXPECT_EQ(driver_->IoctlReadStats().moves.evictions, 1);

  // Absent blocks report NotFound.
  EXPECT_EQ(driver_->IoctlEvictBlock(orig7).code(), StatusCode::kNotFound);
}

TEST_F(AdaptiveDriverTest, EvictDirtyBlockCopiesBack) {
  Build();
  const SectorNo original = OriginalOf(7);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, slot0).ok());
  driver_->Drain();
  ASSERT_TRUE(
      driver_->SubmitBlock(0, 7, IoType::kWrite, driver_->now()).ok());
  driver_->Drain();
  Stamp(slot0, 0xA700);
  const std::int64_t ios_before = driver_->internal_io_count();

  ASSERT_TRUE(driver_->IoctlEvictBlock(original).ok());
  driver_->Drain();
  // Dirty eviction: read relocation + write original + table write.
  EXPECT_EQ(driver_->internal_io_count() - ios_before, 3);
  EXPECT_FALSE(driver_->block_table().Lookup(original).has_value());
  EXPECT_TRUE(HasStamp(original, 0xA700));
}

TEST_F(AdaptiveDriverTest, VacatedSlotQuarantinedUntilTableWriteDurable) {
  Build();
  const SectorNo orig7 = OriginalOf(7);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  ASSERT_TRUE(driver_->IoctlCopyBlock(orig7, slot0).ok());
  driver_->Drain();

  // The eviction's entry removal happens synchronously for clean entries,
  // but its table write is still in flight: the vacated slot must refuse
  // new claims until the removal is durable on disk.
  ASSERT_TRUE(driver_->IoctlEvictBlock(orig7).ok());
  EXPECT_FALSE(driver_->block_table().Lookup(orig7).has_value());
  EXPECT_EQ(driver_->IoctlCopyBlock(OriginalOf(9), slot0).code(),
            StatusCode::kAlreadyExists);
  driver_->Drain();
  // Once durable, the slot is reusable.
  ASSERT_TRUE(driver_->IoctlCopyBlock(OriginalOf(9), slot0).ok());
  driver_->Drain();
  EXPECT_EQ(driver_->block_table().Lookup(OriginalOf(9)).value(), slot0);
}

TEST_F(FaultyDriverTest, PersistentErrorAbortsMoveChainAndRollsBack) {
  Build(fault::FaultPlan{});
  const SectorNo original = OriginalOf(7);
  const SectorNo slot0 = driver_->ReservedSlotSector(0);
  const SectorNo slot1 = driver_->ReservedSlotSector(1);
  // Rebuild with a permanently bad second slot so the shuffle's write leg
  // can never land.
  fault::FaultPlan bad;
  bad.media.push_back(fault::MediaFault{slot1, /*count=*/1,
                                        /*persistent=*/true,
                                        /*fail_budget=*/1,
                                        /*arm_after_io=*/0});
  driver_ = nullptr;
  disk_ = nullptr;
  store_ = fault::CrashTableStore{};
  sink_.completions.clear();
  Build(std::move(bad));

  Stamp(original, 0x700);
  ASSERT_TRUE(driver_->IoctlCopyBlock(original, slot0).ok());
  driver_->Drain();
  ASSERT_TRUE(driver_->IoctlMoveBlock(original, slot1).ok());
  driver_->Drain();

  const FaultCounters faults = driver_->IoctlReadStats().faults;
  EXPECT_EQ(faults.aborted_chains, 1);
  // Rollback: the entry still points at the source slot, whose payload is
  // intact, and reads of the block succeed.
  EXPECT_EQ(driver_->block_table().Lookup(original).value(), slot0);
  EXPECT_TRUE(HasStamp(slot0, 0x700));
  EXPECT_EQ(driver_->IoctlReadStats().moves.shuffles, 0);
  ASSERT_TRUE(driver_->SubmitBlock(0, 7, IoType::kRead, driver_->now()).ok());
  driver_->Drain();
  ASSERT_FALSE(sink_.completions.empty());
  EXPECT_TRUE(sink_.completions.back().breakdown.ok());
}

}  // namespace
}  // namespace abr::driver
