#include "driver/block_table.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "driver/table_store.h"
#include "util/rng.h"

namespace abr::driver {
namespace {

TEST(BlockTableTest, InsertAndLookup) {
  BlockTable t(8);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  ASSERT_TRUE(t.Insert(200, 5016).ok());
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.Lookup(100).value(), 5000);
  EXPECT_EQ(t.Lookup(200).value(), 5016);
  EXPECT_FALSE(t.Lookup(300).has_value());
}

TEST(BlockTableTest, DuplicateOriginalRejected) {
  BlockTable t(8);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  EXPECT_EQ(t.Insert(100, 6000).code(), StatusCode::kAlreadyExists);
}

TEST(BlockTableTest, DuplicateTargetRejected) {
  BlockTable t(8);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  EXPECT_EQ(t.Insert(200, 5000).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(t.TargetInUse(5000));
  EXPECT_FALSE(t.TargetInUse(6000));
}

TEST(BlockTableTest, CapacityEnforced) {
  BlockTable t(2);
  ASSERT_TRUE(t.Insert(1, 100).ok());
  ASSERT_TRUE(t.Insert(2, 200).ok());
  EXPECT_EQ(t.Insert(3, 300).code(), StatusCode::kResourceExhausted);
}

TEST(BlockTableTest, DirtyBit) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  EXPECT_FALSE(t.LookupEntry(100)->dirty);
  ASSERT_TRUE(t.MarkDirty(100).ok());
  EXPECT_TRUE(t.LookupEntry(100)->dirty);
  EXPECT_EQ(t.MarkDirty(999).code(), StatusCode::kNotFound);
}

TEST(BlockTableTest, MarkAllDirty) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(1, 100).ok());
  ASSERT_TRUE(t.Insert(2, 200).ok());
  t.MarkAllDirty();
  for (const BlockTableEntry& e : t.entries()) EXPECT_TRUE(e.dirty);
}

TEST(BlockTableTest, RemoveSwapsLast) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(1, 100).ok());
  ASSERT_TRUE(t.Insert(2, 200).ok());
  ASSERT_TRUE(t.Insert(3, 300).ok());
  ASSERT_TRUE(t.Remove(2).ok());
  EXPECT_EQ(t.size(), 2);
  EXPECT_FALSE(t.Lookup(2).has_value());
  EXPECT_EQ(t.Lookup(1).value(), 100);
  EXPECT_EQ(t.Lookup(3).value(), 300);
  EXPECT_FALSE(t.TargetInUse(200));
  EXPECT_EQ(t.Remove(2).code(), StatusCode::kNotFound);
}

TEST(BlockTableTest, RemoveLastEntry) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(1, 100).ok());
  ASSERT_TRUE(t.Remove(1).ok());
  EXPECT_EQ(t.size(), 0);
}

TEST(BlockTableTest, ReinsertAfterRemove) {
  BlockTable t(2);
  ASSERT_TRUE(t.Insert(1, 100).ok());
  ASSERT_TRUE(t.Remove(1).ok());
  EXPECT_TRUE(t.Insert(1, 100).ok());
}

TEST(BlockTableTest, Clear) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(1, 100).ok());
  t.Clear();
  EXPECT_EQ(t.size(), 0);
  EXPECT_FALSE(t.Lookup(1).has_value());
  EXPECT_TRUE(t.Insert(1, 100).ok());
}

TEST(BlockTableTest, SerializeRoundTrip) {
  BlockTable t(16);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  ASSERT_TRUE(t.Insert(200, 5016).ok());
  ASSERT_TRUE(t.MarkDirty(200).ok());
  auto image = t.Serialize();
  StatusOr<BlockTable> loaded = BlockTable::Deserialize(image, 16);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2);
  EXPECT_EQ(loaded->Lookup(100).value(), 5000);
  EXPECT_FALSE(loaded->LookupEntry(100)->dirty);
  EXPECT_TRUE(loaded->LookupEntry(200)->dirty);
}

TEST(BlockTableTest, SerializeEmpty) {
  BlockTable t(16);
  StatusOr<BlockTable> loaded = BlockTable::Deserialize(t.Serialize(), 16);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0);
}

TEST(BlockTableTest, DeserializeRejectsCorruption) {
  BlockTable t(16);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  auto image = t.Serialize();
  image[30] ^= 0xFF;  // flip a bit inside an entry
  EXPECT_EQ(BlockTable::Deserialize(image, 16).status().code(),
            StatusCode::kCorruption);
}

TEST(BlockTableTest, DeserializeRejectsBadMagic) {
  BlockTable t(16);
  auto image = t.Serialize();
  image[0] ^= 0xFF;
  EXPECT_EQ(BlockTable::Deserialize(image, 16).status().code(),
            StatusCode::kCorruption);
}

TEST(BlockTableTest, DeserializeRejectsTruncation) {
  BlockTable t(16);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  auto image = t.Serialize();
  image.resize(20);
  EXPECT_EQ(BlockTable::Deserialize(image, 16).status().code(),
            StatusCode::kCorruption);
}

TEST(BlockTableTest, DeserializeRejectsOverCapacity) {
  BlockTable t(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(i, 1000 + i).ok());
  }
  EXPECT_EQ(BlockTable::Deserialize(t.Serialize(), 5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BlockTableTest, SerializedSizeIndependentOfFill) {
  // The on-disk area is sized for a full table.
  EXPECT_EQ(BlockTable::SerializedBytes(1018), 24 + 1018 * 16);
  EXPECT_EQ(BlockTable::SerializedSectors(1018, 512),
            (24 + 1018 * 16 + 511) / 512);
}

TEST(BlockTableTest, PaperToshibaTableFitsInTwoBlocks) {
  // 1018 entries -> 32 sectors = exactly 2 file-system blocks, leaving
  // 1018 data slots in the 48-cylinder reserved region (Section 5).
  EXPECT_EQ(BlockTable::SerializedSectors(1018, 512), 32);
}

// Regression for the flat-hash index: backward-shift deletion must keep
// every remaining entry findable through any interleaving of Insert,
// Remove, and Lookup. Thousands of random ops run against an
// std::unordered_map oracle; the dense key range keeps the flat table's
// probe chains long so deletions constantly shift occupied slots.
TEST(BlockTableTest, InterleavedOpsMatchUnorderedMapOracle) {
  constexpr std::int32_t kCapacity = 1024;
  BlockTable table(kCapacity);
  std::unordered_map<SectorNo, SectorNo> oracle;       // original -> target
  std::unordered_set<SectorNo> targets_in_use;
  Rng rng(0xB10C);
  for (int op = 0; op < 50000; ++op) {
    const SectorNo original = static_cast<SectorNo>(rng.NextBounded(2048));
    switch (rng.NextBounded(4)) {
      case 0: {  // Insert (may collide on original, target, or capacity)
        const SectorNo target =
            1000000 + static_cast<SectorNo>(rng.NextBounded(2048));
        const Status s = table.Insert(original, target);
        if (oracle.size() >= static_cast<std::size_t>(kCapacity)) {
          EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
        } else if (oracle.contains(original) ||
                   targets_in_use.contains(target)) {
          EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
        } else {
          ASSERT_TRUE(s.ok()) << s.ToString();
          oracle.emplace(original, target);
          targets_in_use.insert(target);
        }
        break;
      }
      case 1: {  // Remove
        const Status s = table.Remove(original);
        auto it = oracle.find(original);
        if (it == oracle.end()) {
          EXPECT_EQ(s.code(), StatusCode::kNotFound);
        } else {
          ASSERT_TRUE(s.ok()) << s.ToString();
          targets_in_use.erase(it->second);
          oracle.erase(it);
        }
        break;
      }
      case 2: {  // Lookup
        auto it = oracle.find(original);
        const std::optional<SectorNo> got = table.Lookup(original);
        if (it == oracle.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      default: {  // TargetInUse
        const SectorNo target =
            1000000 + static_cast<SectorNo>(rng.NextBounded(2048));
        EXPECT_EQ(table.TargetInUse(target), targets_in_use.contains(target));
      }
    }
    ASSERT_EQ(table.size(), static_cast<std::int32_t>(oracle.size()));
  }
  // Drain everything through Remove: the index must stay consistent all
  // the way to empty.
  while (!oracle.empty()) {
    const SectorNo original = oracle.begin()->first;
    ASSERT_TRUE(table.Remove(original).ok());
    oracle.erase(oracle.begin());
    ASSERT_EQ(table.size(), static_cast<std::int32_t>(oracle.size()));
  }
  EXPECT_EQ(table.size(), 0);
}

TEST(BlockTableTest, HostileEntryCountRejectedWithoutOverflow) {
  // A count near 2^64 must be rejected by the capacity check before any
  // `count * entry_bytes` arithmetic can wrap and admit the image.
  BlockTable t(8);
  std::vector<std::uint8_t> image = t.Serialize();
  for (int i = 0; i < 8; ++i) {
    image[8 + static_cast<std::size_t>(i)] = 0xFF;  // count = 2^64 - 1
  }
  const StatusOr<BlockTable> loaded = BlockTable::Deserialize(image, 8);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // A count that is huge but under 2^61 (so the multiply cannot wrap)
  // still fails the same way at a larger capacity-shaped boundary.
  for (int i = 0; i < 8; ++i) {
    image[8 + static_cast<std::size_t>(i)] =
        i == 7 ? 0x0F : 0xFF;  // count = 2^60 - 1
  }
  const StatusOr<BlockTable> big = BlockTable::Deserialize(image, 8);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlockTableTest, CorruptByteReportsReach) {
  InMemoryTableStore store;
  // No image saved yet: nothing to corrupt.
  EXPECT_FALSE(store.CorruptByte(0));
  BlockTable t(4);
  store.Save(t.Serialize());
  EXPECT_TRUE(store.CorruptByte(0));
  // Offsets past the image are out of reach.
  EXPECT_FALSE(store.CorruptByte(t.Serialize().size()));
  EXPECT_FALSE(store.CorruptByte(1u << 20));
}

TEST(BlockTableTest, ManyEntriesRoundTrip) {
  BlockTable t(4096);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(t.Insert(i * 16, 1000000 + i * 16).ok());
    if (i % 3 == 0) ASSERT_TRUE(t.MarkDirty(i * 16).ok());
  }
  StatusOr<BlockTable> loaded = BlockTable::Deserialize(t.Serialize(), 4096);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 4096);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(loaded->Lookup(i * 16).value(), 1000000 + i * 16);
    EXPECT_EQ(loaded->LookupEntry(i * 16)->dirty, i % 3 == 0);
  }
}

TEST(BlockTableTest, UpdateRelocatedRepointsEntry) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  ASSERT_TRUE(t.MarkDirty(100).ok());
  ASSERT_TRUE(t.UpdateRelocated(100, 5016).ok());
  EXPECT_EQ(t.Lookup(100).value(), 5016);
  // The dirty bit survives the re-point; the old target is free again.
  EXPECT_TRUE(t.LookupEntry(100)->dirty);
  EXPECT_FALSE(t.TargetInUse(5000));
  EXPECT_TRUE(t.TargetInUse(5016));
  ASSERT_TRUE(t.Insert(200, 5000).ok());
}

TEST(BlockTableTest, UpdateRelocatedValidation) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  ASSERT_TRUE(t.Insert(200, 5016).ok());
  EXPECT_EQ(t.UpdateRelocated(300, 5032).code(), StatusCode::kNotFound);
  EXPECT_EQ(t.UpdateRelocated(100, 5016).code(), StatusCode::kAlreadyExists);
  // Re-pointing to the current target is a no-op success.
  ASSERT_TRUE(t.UpdateRelocated(100, 5000).ok());
  EXPECT_EQ(t.Lookup(100).value(), 5000);
}

TEST(BlockTableTest, UpdateRelocatedSurvivesSerialization) {
  BlockTable t(4);
  ASSERT_TRUE(t.Insert(100, 5000).ok());
  ASSERT_TRUE(t.UpdateRelocated(100, 5016).ok());
  StatusOr<BlockTable> loaded = BlockTable::Deserialize(t.Serialize(), 4);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Lookup(100).value(), 5016);
  EXPECT_FALSE(loaded->TargetInUse(5000));
}

}  // namespace
}  // namespace abr::driver
