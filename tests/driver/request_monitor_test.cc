#include "driver/request_monitor.h"

#include <gtest/gtest.h>

namespace abr::driver {
namespace {

RequestRecord Rec(BlockNo block) {
  return RequestRecord{0, block, 8192, sched::IoType::kRead};
}

TEST(RequestMonitorTest, RecordsUntilFull) {
  RequestMonitor m(3);
  EXPECT_TRUE(m.Record(Rec(1)));
  EXPECT_TRUE(m.Record(Rec(2)));
  EXPECT_TRUE(m.Record(Rec(3)));
  EXPECT_EQ(m.size(), 3);
  EXPECT_TRUE(m.suspended());
}

TEST(RequestMonitorTest, SuspendsAndCountsDrops) {
  RequestMonitor m(2);
  m.Record(Rec(1));
  m.Record(Rec(2));
  EXPECT_FALSE(m.Record(Rec(3)));
  EXPECT_FALSE(m.Record(Rec(4)));
  EXPECT_EQ(m.dropped(), 2);
  EXPECT_EQ(m.total_dropped(), 2);
  EXPECT_EQ(m.size(), 2);
}

TEST(RequestMonitorTest, ReadAndClearResumesRecording) {
  RequestMonitor m(2);
  m.Record(Rec(1));
  m.Record(Rec(2));
  m.Record(Rec(3));  // dropped
  auto records = m.ReadAndClear();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].block, 1);
  EXPECT_EQ(records[1].block, 2);
  EXPECT_EQ(m.size(), 0);
  EXPECT_FALSE(m.suspended());
  EXPECT_EQ(m.dropped(), 0);           // per-period counter reset
  EXPECT_EQ(m.total_dropped(), 1);     // lifetime counter kept
  EXPECT_TRUE(m.Record(Rec(4)));
}

TEST(RequestMonitorTest, PreservesRecordFields) {
  RequestMonitor m(4);
  m.Record(RequestRecord{3, 77, 4096, sched::IoType::kWrite});
  auto records = m.ReadAndClear();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].device, 3);
  EXPECT_EQ(records[0].block, 77);
  EXPECT_EQ(records[0].size_bytes, 4096);
  EXPECT_EQ(records[0].type, sched::IoType::kWrite);
}

TEST(RequestMonitorTest, EmptyReadAndClear) {
  RequestMonitor m(4);
  EXPECT_TRUE(m.ReadAndClear().empty());
}

TEST(RequestMonitorTest, OrderPreserved) {
  RequestMonitor m(100);
  for (BlockNo b = 0; b < 50; ++b) m.Record(Rec(b));
  auto records = m.ReadAndClear();
  for (BlockNo b = 0; b < 50; ++b) {
    EXPECT_EQ(records[static_cast<std::size_t>(b)].block, b);
  }
}

}  // namespace
}  // namespace abr::driver
