#include "driver/perf_monitor.h"

#include <gtest/gtest.h>

#include "disk/seek_model.h"

namespace abr::driver {
namespace {

using sched::IoType;

TEST(PerfMonitorTest, ArrivalChainsPerSide) {
  PerfMonitor m;
  // Arrival cylinders: R10, W100, R30, W100.
  m.RecordArrival(IoType::kRead, 10);
  m.RecordArrival(IoType::kWrite, 100);
  m.RecordArrival(IoType::kRead, 30);
  m.RecordArrival(IoType::kWrite, 100);
  PerfSnapshot s = m.Snapshot();
  // Read chain: |30-10| = 20 -> one sample.
  EXPECT_EQ(s.reads.fcfs_seek_distance.count(), 1);
  EXPECT_DOUBLE_EQ(s.reads.fcfs_seek_distance.Mean(), 20.0);
  // Write chain: |100-100| = 0.
  EXPECT_EQ(s.writes.fcfs_seek_distance.count(), 1);
  EXPECT_DOUBLE_EQ(s.writes.fcfs_seek_distance.Mean(), 0.0);
  // Combined chain: 90, 70, 70 -> three samples.
  EXPECT_EQ(s.all.fcfs_seek_distance.count(), 3);
  EXPECT_NEAR(s.all.fcfs_seek_distance.Mean(), (90 + 70 + 70) / 3.0, 1e-9);
}

TEST(PerfMonitorTest, CombinedChainIsNotUnionOfSides) {
  PerfMonitor m;
  m.RecordArrival(IoType::kRead, 0);
  m.RecordArrival(IoType::kWrite, 500);
  m.RecordArrival(IoType::kRead, 0);
  PerfSnapshot s = m.Snapshot();
  EXPECT_DOUBLE_EQ(s.reads.fcfs_seek_distance.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.all.fcfs_seek_distance.Mean(), 500.0);
}

TEST(PerfMonitorTest, CompletionsSplitBySide) {
  PerfMonitor m;
  m.RecordCompletion(IoType::kRead, 1000, 20000, 5, 8000, 2000, false);
  m.RecordCompletion(IoType::kWrite, 3000, 10000, 0, 4000, 2000, true);
  PerfSnapshot s = m.Snapshot();
  EXPECT_EQ(s.reads.count(), 1);
  EXPECT_EQ(s.writes.count(), 1);
  EXPECT_EQ(s.all.count(), 2);
  EXPECT_DOUBLE_EQ(s.reads.service_time.MeanMillis(), 20.0);
  EXPECT_DOUBLE_EQ(s.writes.queue_time.MeanMillis(), 3.0);
  EXPECT_DOUBLE_EQ(s.all.service_time.MeanMillis(), 15.0);
  EXPECT_EQ(s.writes.buffer_hits, 1);
  EXPECT_EQ(s.all.buffer_hits, 1);
}

TEST(PerfMonitorTest, SeekTimeFromDistanceDistribution) {
  PerfMonitor m;
  m.RecordCompletion(IoType::kRead, 0, 1, 0, 0, 0, false);
  m.RecordCompletion(IoType::kRead, 0, 1, 10, 0, 0, false);
  PerfSnapshot s = m.Snapshot();
  const disk::SeekModel model = disk::SeekModel::Linear(2.0, 0.1, 100);
  // distances {0, 10} -> times {0, 3.0} -> mean 1.5 ms.
  EXPECT_DOUBLE_EQ(s.reads.MeanSeekTimeMillis(model), 1.5);
}

TEST(PerfMonitorTest, FcfsSeekTimeFromArrivalChain) {
  PerfMonitor m;
  m.RecordArrival(IoType::kRead, 0);
  m.RecordArrival(IoType::kRead, 50);
  PerfSnapshot s = m.Snapshot();
  const disk::SeekModel model = disk::SeekModel::Linear(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(s.reads.FcfsMeanSeekTimeMillis(model), 6.0);
}

TEST(PerfMonitorTest, RotationPlusTransfer) {
  PerfMonitor m;
  m.RecordCompletion(IoType::kRead, 0, 30000, 3, 8000, 4000, false);
  m.RecordCompletion(IoType::kRead, 0, 30000, 3, 4000, 4000, false);
  PerfSnapshot s = m.Snapshot();
  EXPECT_DOUBLE_EQ(s.reads.MeanRotationPlusTransferMillis(), 10.0);
}

TEST(PerfMonitorTest, SnapshotWithoutClearKeepsData) {
  PerfMonitor m;
  m.RecordCompletion(IoType::kRead, 0, 1000, 1, 0, 0, false);
  m.Snapshot(/*clear=*/false);
  EXPECT_EQ(m.Snapshot().reads.count(), 1);
}

TEST(PerfMonitorTest, SnapshotWithClearResetsAll) {
  PerfMonitor m;
  m.RecordArrival(IoType::kRead, 10);
  m.RecordCompletion(IoType::kRead, 0, 1000, 1, 0, 0, false);
  m.Snapshot(/*clear=*/true);
  PerfSnapshot s = m.Snapshot();
  EXPECT_EQ(s.reads.count(), 0);
  EXPECT_EQ(s.all.count(), 0);
  // Arrival chain also reset: next arrival starts a fresh chain.
  m.RecordArrival(IoType::kRead, 500);
  EXPECT_EQ(m.Snapshot().reads.fcfs_seek_distance.count(), 0);
}

TEST(PerfMonitorTest, ZeroSeekFraction) {
  PerfMonitor m;
  m.RecordCompletion(IoType::kWrite, 0, 1, 0, 0, 0, false);
  m.RecordCompletion(IoType::kWrite, 0, 1, 0, 0, 0, false);
  m.RecordCompletion(IoType::kWrite, 0, 1, 7, 0, 0, false);
  PerfSnapshot s = m.Snapshot();
  EXPECT_NEAR(s.writes.sched_seek_distance.ZeroFraction(), 2.0 / 3.0, 1e-9);
}

TEST(PerfMonitorTest, EmptySidesAreZero) {
  PerfMonitor m;
  PerfSnapshot s = m.Snapshot();
  const disk::SeekModel model = disk::SeekModel::Linear(1.0, 0.1, 10);
  EXPECT_DOUBLE_EQ(s.reads.MeanSeekTimeMillis(model), 0.0);
  EXPECT_DOUBLE_EQ(s.all.MeanRotationPlusTransferMillis(), 0.0);
}

}  // namespace
}  // namespace abr::driver
