#include "fault/faulty_disk.h"

#include <gtest/gtest.h>

#include "disk/drive_spec.h"

namespace abr::fault {
namespace {

/// Records observer callbacks for the table-area hook tests.
struct RecordingObserver : public TableWriteObserver {
  void OnTableWriteDurable() override { ++durable; }
  void OnTableWriteTorn(double keep_fraction) override {
    ++torn;
    last_fraction = keep_fraction;
  }
  int durable = 0;
  int torn = 0;
  double last_fraction = -1;
};

FaultyDisk MakeDisk(FaultPlan plan) {
  return FaultyDisk(disk::DriveSpec::TestDrive(), std::move(plan), 42);
}

TEST(FaultyDiskTest, CleanPlanServicesNormally) {
  FaultyDisk d = MakeDisk(FaultPlan{});
  const disk::ServiceBreakdown b = d.Service(100, 8, /*is_read=*/false, 0);
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.media, disk::MediaStatus::kOk);
  EXPECT_FALSE(d.crashed());
  EXPECT_EQ(d.io_index(), 1);
  EXPECT_EQ(d.injected_faults(), 0);
}

TEST(FaultyDiskTest, TransientFaultHealsAfterBudget) {
  FaultPlan plan;
  plan.media.push_back(MediaFault{/*first=*/50, /*count=*/2,
                                  /*persistent=*/false, /*fail_budget=*/2,
                                  /*arm_after_io=*/0});
  FaultyDisk d = MakeDisk(std::move(plan));

  for (int attempt = 0; attempt < 2; ++attempt) {
    const disk::ServiceBreakdown b = d.Service(48, 8, /*is_read=*/true, 0);
    EXPECT_EQ(b.media, disk::MediaStatus::kTransientError);
    EXPECT_EQ(b.error_sector, 50);
    EXPECT_EQ(b.sectors_ok, 2);  // 48 and 49 transferred first
  }
  // Budget exhausted: the marginal range now reads fine.
  const disk::ServiceBreakdown healed = d.Service(48, 8, /*is_read=*/true, 0);
  EXPECT_TRUE(healed.ok());
  EXPECT_EQ(d.injected_faults(), 2);
}

TEST(FaultyDiskTest, PersistentFaultNeverHeals) {
  FaultPlan plan;
  plan.media.push_back(MediaFault{/*first=*/64, /*count=*/1,
                                  /*persistent=*/true, /*fail_budget=*/1,
                                  /*arm_after_io=*/0});
  FaultyDisk d = MakeDisk(std::move(plan));
  for (int attempt = 0; attempt < 10; ++attempt) {
    const disk::ServiceBreakdown b = d.Service(64, 1, /*is_read=*/false, 0);
    EXPECT_EQ(b.media, disk::MediaStatus::kPersistentError);
    EXPECT_EQ(b.error_sector, 64);
    EXPECT_EQ(b.sectors_ok, 0);
  }
}

TEST(FaultyDiskTest, FaultDormantUntilArmed) {
  FaultPlan plan;
  plan.media.push_back(MediaFault{/*first=*/10, /*count=*/1,
                                  /*persistent=*/true, /*fail_budget=*/1,
                                  /*arm_after_io=*/3});
  FaultyDisk d = MakeDisk(std::move(plan));
  // io_index 0, 1, 2: the range has not gone bad yet.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(d.Service(10, 1, /*is_read=*/true, 0).ok());
  }
  EXPECT_EQ(d.Service(10, 1, /*is_read=*/true, 0).media,
            disk::MediaStatus::kPersistentError);
}

TEST(FaultyDiskTest, MissOverlapLeavesOperationClean) {
  FaultPlan plan;
  plan.media.push_back(MediaFault{/*first=*/100, /*count=*/4,
                                  /*persistent=*/true, /*fail_budget=*/1,
                                  /*arm_after_io=*/0});
  FaultyDisk d = MakeDisk(std::move(plan));
  EXPECT_TRUE(d.Service(96, 4, /*is_read=*/true, 0).ok());
  EXPECT_TRUE(d.Service(104, 4, /*is_read=*/true, 0).ok());
  EXPECT_FALSE(d.Service(98, 4, /*is_read=*/true, 0).ok());
}

TEST(FaultyDiskTest, TornWriteLandsPrefixThenRetrySucceeds) {
  FaultPlan plan;
  plan.torn.push_back(TornWrite{/*write_index=*/1, /*keep_fraction=*/0.5});
  FaultyDisk d = MakeDisk(std::move(plan));

  EXPECT_TRUE(d.Service(0, 8, /*is_read=*/false, 0).ok());  // write 0
  const disk::ServiceBreakdown torn =
      d.Service(200, 8, /*is_read=*/false, 0);  // write 1: torn
  EXPECT_EQ(torn.media, disk::MediaStatus::kTransientError);
  EXPECT_GE(torn.sectors_ok, 0);
  EXPECT_LT(torn.sectors_ok, 8);
  // Reads do not advance the write stream; the retried write succeeds.
  EXPECT_TRUE(d.Service(200, 8, /*is_read=*/true, 0).ok());
  EXPECT_TRUE(d.Service(200, 8, /*is_read=*/false, 0).ok());
  EXPECT_EQ(d.injected_faults(), 1);
}

TEST(FaultyDiskTest, CrashPointFreezesTheDiskUntilCleared) {
  FaultPlan plan;
  plan.crashes.push_back(CrashPoint{/*at_io=*/2, /*at_time=*/-1});
  FaultyDisk d = MakeDisk(std::move(plan));

  EXPECT_TRUE(d.Service(0, 1, /*is_read=*/true, 0).ok());   // io 0
  EXPECT_TRUE(d.Service(8, 1, /*is_read=*/true, 10).ok());  // io 1
  const disk::ServiceBreakdown dead =
      d.Service(16, 4, /*is_read=*/false, 20);  // io 2: power fails
  EXPECT_EQ(dead.media, disk::MediaStatus::kCrashed);
  EXPECT_TRUE(d.crashed());
  ASSERT_TRUE(d.crashed_op().has_value());
  EXPECT_EQ(d.crashed_op()->sector, 16);
  EXPECT_EQ(d.crashed_op()->count, 4);
  EXPECT_FALSE(d.crashed_op()->is_read);
  EXPECT_EQ(d.injected_crashes(), 1);
  EXPECT_EQ(d.remaining_crash_points(), 0u);

  // Everything after the crash is dead too, until the harness re-arms.
  EXPECT_EQ(d.Service(0, 1, /*is_read=*/true, 30).media,
            disk::MediaStatus::kCrashed);
  d.ClearCrash();
  EXPECT_TRUE(d.Service(0, 1, /*is_read=*/true, 40).ok());
  EXPECT_EQ(d.injected_crashes(), 1);  // the point stays consumed
}

TEST(FaultyDiskTest, TableWritesReportDurableAndTorn) {
  FaultPlan plan;
  plan.crashes.push_back(CrashPoint{/*at_io=*/2, /*at_time=*/-1});
  FaultyDisk d = MakeDisk(std::move(plan));
  RecordingObserver observer;
  d.set_table_observer(&observer);
  d.SetTableArea(/*first=*/500, /*count=*/2);

  // A completed write covering the table area commits the staged image.
  EXPECT_TRUE(d.Service(500, 2, /*is_read=*/false, 0).ok());
  EXPECT_EQ(observer.durable, 1);
  EXPECT_EQ(observer.torn, 0);

  // Reads of the area and writes elsewhere do not touch the observer.
  EXPECT_TRUE(d.Service(500, 2, /*is_read=*/true, 0).ok());
  EXPECT_EQ(observer.durable, 1);

  // A crash mid table write tears it instead.
  EXPECT_EQ(d.Service(500, 2, /*is_read=*/false, 0).media,
            disk::MediaStatus::kCrashed);
  EXPECT_EQ(observer.durable, 1);
  EXPECT_EQ(observer.torn, 1);
  EXPECT_GE(observer.last_fraction, 0.0);
  EXPECT_LE(observer.last_fraction, 1.0);
}

TEST(FaultyDiskTest, DeterministicAcrossRuns) {
  FaultPlanConfig pc;
  pc.sector_count = disk::DriveSpec::TestDrive().geometry.total_sectors();
  const FaultPlan plan = FaultPlan::Random(7, pc);

  auto run = [&plan]() {
    FaultyDisk d(disk::DriveSpec::TestDrive(), plan, 7);
    std::uint64_t digest = 0;
    for (int i = 0; i < 200; ++i) {
      const disk::ServiceBreakdown b =
          d.Service((i * 37) % 1000, 4, i % 3 == 0, i * 100);
      digest = digest * 31 + static_cast<std::uint64_t>(b.media) * 7 +
               static_cast<std::uint64_t>(b.sectors_ok);
      if (d.crashed()) d.ClearCrash();
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}


TEST(FaultyDiskTest, TimedCrashPointHonorsBootTimeOffset) {
  FaultPlan plan;
  CrashPoint c;
  c.at_time = 10000;
  plan.crashes.push_back(c);
  FaultyDisk d = MakeDisk(std::move(plan));
  // First boot: local time == global time.
  EXPECT_TRUE(d.Service(100, 8, /*is_read=*/true, 5000).ok());
  // Second boot: the clock restarts, the harness arms the global offset.
  d.set_time_offset(8000);
  EXPECT_TRUE(d.Service(100, 8, /*is_read=*/true, 1000).ok());  // global 9000
  const disk::ServiceBreakdown b =
      d.Service(100, 8, /*is_read=*/true, 2500);  // global 10500: fires
  EXPECT_EQ(b.media, disk::MediaStatus::kCrashed);
  EXPECT_TRUE(d.crashed());
  ASSERT_TRUE(d.crashed_op().has_value());
  EXPECT_EQ(d.crashed_op()->time, 2500);  // local boot time, offset excluded
}

TEST(FaultyDiskTest, FaultEventBoundCleanPlanIsUnbounded) {
  FaultyDisk d = MakeDisk(FaultPlan{});
  EXPECT_EQ(d.NextFaultEventBound(), disk::kNoFaultEvent);
}

TEST(FaultyDiskTest, FaultEventBoundMediaFaultPinsToZeroUntilSpent) {
  FaultPlan plan;
  plan.media.push_back(MediaFault{/*first=*/50, /*count=*/2,
                                  /*persistent=*/false, /*fail_budget=*/1,
                                  /*arm_after_io=*/0});
  FaultyDisk d = MakeDisk(std::move(plan));
  // Io-indexed triggers advance with every op, so no sim-time window is
  // provably event-free while the budget lasts.
  EXPECT_EQ(d.NextFaultEventBound(), 0);
  EXPECT_FALSE(d.Service(50, 1, /*is_read=*/true, 0).ok());
  // Budget spent: the transient fault healed for good, nothing binds.
  EXPECT_EQ(d.NextFaultEventBound(), disk::kNoFaultEvent);
}

TEST(FaultyDiskTest, FaultEventBoundPersistentFaultNeverReleases) {
  FaultPlan plan;
  plan.media.push_back(MediaFault{/*first=*/64, /*count=*/1,
                                  /*persistent=*/true, /*fail_budget=*/1,
                                  /*arm_after_io=*/0});
  FaultyDisk d = MakeDisk(std::move(plan));
  EXPECT_EQ(d.NextFaultEventBound(), 0);
  EXPECT_FALSE(d.Service(64, 1, /*is_read=*/false, 0).ok());
  EXPECT_EQ(d.NextFaultEventBound(), 0);
}

TEST(FaultyDiskTest, FaultEventBoundTornWritePinsToZeroUntilConsumed) {
  FaultPlan plan;
  plan.torn.push_back(TornWrite{/*write_index=*/0, /*keep_fraction=*/0.5});
  FaultyDisk d = MakeDisk(std::move(plan));
  EXPECT_EQ(d.NextFaultEventBound(), 0);
  EXPECT_FALSE(d.Service(0, 8, /*is_read=*/false, 0).ok());
  EXPECT_EQ(d.NextFaultEventBound(), disk::kNoFaultEvent);
}

TEST(FaultyDiskTest, FaultEventBoundIoCrashPinsToZero) {
  FaultPlan plan;
  plan.crashes.push_back(CrashPoint{/*at_io=*/5, /*at_time=*/-1});
  FaultyDisk d = MakeDisk(std::move(plan));
  EXPECT_EQ(d.NextFaultEventBound(), 0);
}

TEST(FaultyDiskTest, FaultEventBoundTimedCrashIsItsBootLocalFiringTime) {
  FaultPlan plan;
  CrashPoint c;
  c.at_time = 10000;
  plan.crashes.push_back(c);
  FaultyDisk d = MakeDisk(std::move(plan));
  // First boot: fires at local 10000.
  EXPECT_EQ(d.NextFaultEventBound(), 10000);
  // Later boot with its clock restarted: the global schedule converts to
  // boot-local time, clamped at zero once the firing time has passed.
  d.set_time_offset(8000);
  EXPECT_EQ(d.NextFaultEventBound(), 2000);
  d.set_time_offset(12000);
  EXPECT_EQ(d.NextFaultEventBound(), 0);

  // Once the point fires it stays consumed: the bound opens up.
  d.set_time_offset(0);
  EXPECT_EQ(d.Service(0, 1, /*is_read=*/true, 10500).media,
            disk::MediaStatus::kCrashed);
  d.ClearCrash();
  EXPECT_EQ(d.NextFaultEventBound(), disk::kNoFaultEvent);
}

}  // namespace
}  // namespace abr::fault
