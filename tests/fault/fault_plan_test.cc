#include "fault/fault_plan.h"

#include <gtest/gtest.h>

namespace abr::fault {
namespace {

FaultPlanConfig SmallConfig() {
  FaultPlanConfig config;
  config.sector_count = 4096;
  config.transient_faults = 3;
  config.persistent_faults = 2;
  config.torn_writes = 4;
  config.crash_points = 3;
  config.io_horizon = 2000;
  config.max_fault_sectors = 4;
  config.min_crash_spacing = 64;
  return config;
}

TEST(FaultPlanTest, DeterministicForSeed) {
  const FaultPlanConfig config = SmallConfig();
  const FaultPlan a = FaultPlan::Random(77, config);
  const FaultPlan b = FaultPlan::Random(77, config);
  ASSERT_EQ(a.media.size(), b.media.size());
  for (std::size_t i = 0; i < a.media.size(); ++i) {
    EXPECT_EQ(a.media[i].first, b.media[i].first);
    EXPECT_EQ(a.media[i].count, b.media[i].count);
    EXPECT_EQ(a.media[i].persistent, b.media[i].persistent);
    EXPECT_EQ(a.media[i].fail_budget, b.media[i].fail_budget);
    EXPECT_EQ(a.media[i].arm_after_io, b.media[i].arm_after_io);
  }
  ASSERT_EQ(a.torn.size(), b.torn.size());
  for (std::size_t i = 0; i < a.torn.size(); ++i) {
    EXPECT_EQ(a.torn[i].write_index, b.torn[i].write_index);
    EXPECT_DOUBLE_EQ(a.torn[i].keep_fraction, b.torn[i].keep_fraction);
  }
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].at_io, b.crashes[i].at_io);
  }
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  const FaultPlanConfig config = SmallConfig();
  const FaultPlan a = FaultPlan::Random(1, config);
  const FaultPlan b = FaultPlan::Random(2, config);
  // Over this many draws at least one field must differ.
  bool differ = a.media.size() != b.media.size();
  for (std::size_t i = 0; !differ && i < a.media.size(); ++i) {
    differ = a.media[i].first != b.media[i].first ||
             a.media[i].arm_after_io != b.media[i].arm_after_io;
  }
  for (std::size_t i = 0; !differ && i < a.crashes.size(); ++i) {
    differ = a.crashes[i].at_io != b.crashes[i].at_io;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultPlanTest, RespectsCountsAndBounds) {
  const FaultPlanConfig config = SmallConfig();
  const FaultPlan plan = FaultPlan::Random(123, config);

  ASSERT_EQ(plan.media.size(),
            static_cast<std::size_t>(config.transient_faults +
                                     config.persistent_faults));
  std::int32_t persistent = 0;
  for (const MediaFault& f : plan.media) {
    EXPECT_GE(f.first, 0);
    EXPECT_GE(f.count, 1);
    EXPECT_LE(f.count, config.max_fault_sectors);
    EXPECT_LE(f.first + f.count, config.sector_count);
    EXPECT_GE(f.fail_budget, 1);
    EXPECT_GE(f.arm_after_io, 0);
    EXPECT_LT(f.arm_after_io, config.io_horizon);
    if (f.persistent) ++persistent;
  }
  EXPECT_EQ(persistent, config.persistent_faults);

  ASSERT_EQ(plan.torn.size(), static_cast<std::size_t>(config.torn_writes));
  for (std::size_t i = 0; i < plan.torn.size(); ++i) {
    EXPECT_GE(plan.torn[i].write_index, 0);
    EXPECT_LT(plan.torn[i].write_index, config.io_horizon / 4);
    EXPECT_GT(plan.torn[i].keep_fraction, 0.0);
    EXPECT_LT(plan.torn[i].keep_fraction, 1.0);
    if (i > 0) {
      EXPECT_LT(plan.torn[i - 1].write_index, plan.torn[i].write_index);
    }
  }
}

TEST(FaultPlanTest, CrashPointsSortedAndSpaced) {
  FaultPlanConfig config = SmallConfig();
  config.crash_points = 5;
  const FaultPlan plan = FaultPlan::Random(9, config);
  ASSERT_EQ(plan.crashes.size(), static_cast<std::size_t>(5));
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    EXPECT_GE(plan.crashes[i].at_io, 0);
    if (i > 0) {
      EXPECT_GE(plan.crashes[i].at_io,
                plan.crashes[i - 1].at_io + config.min_crash_spacing);
    }
  }
}

TEST(FaultPlanTest, ZeroEventsYieldEmptyPlan) {
  FaultPlanConfig config = SmallConfig();
  config.transient_faults = 0;
  config.persistent_faults = 0;
  config.torn_writes = 0;
  config.crash_points = 0;
  const FaultPlan plan = FaultPlan::Random(5, config);
  EXPECT_TRUE(plan.media.empty());
  EXPECT_TRUE(plan.torn.empty());
  EXPECT_TRUE(plan.crashes.empty());
}


TEST(FaultPlanTest, TimedCrashPointsAppendedSorted) {
  FaultPlanConfig config;
  config.sector_count = 10000;
  config.crash_points = 2;
  config.timed_crash_points = 3;
  config.time_horizon = 1000000;
  const FaultPlan plan = FaultPlan::Random(7, config);
  ASSERT_EQ(plan.crashes.size(), 5u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(plan.crashes[i].at_io, 0);
    EXPECT_LT(plan.crashes[i].at_time, 0);
  }
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_LT(plan.crashes[i].at_io, 0);
    EXPECT_GE(plan.crashes[i].at_time, 0);
    EXPECT_LT(plan.crashes[i].at_time, config.time_horizon);
  }
  EXPECT_LE(plan.crashes[2].at_time, plan.crashes[3].at_time);
  EXPECT_LE(plan.crashes[3].at_time, plan.crashes[4].at_time);
}

}  // namespace
}  // namespace abr::fault
