#include "fault/crash_harness.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace abr::fault {
namespace {

TEST(CrashHarnessTest, CleanRunVerifiesEverything) {
  CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
  config.seed = 11;
  config.crash_points = 0;
  config.transient_faults = 0;
  config.persistent_faults = 0;
  config.torn_writes = 0;
  CrashHarness harness(config);
  const CrashHarnessResult r = harness.Run();
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_EQ(r.crashes, 0);
  EXPECT_EQ(r.mismatches, 0);
  EXPECT_EQ(r.injected_faults, 0);
  EXPECT_GT(r.writes_acked, 0);
  EXPECT_GT(r.blocks_verified, 0);
  EXPECT_GT(r.arrange_passes, 0);
}

TEST(CrashHarnessTest, DeterministicFingerprint) {
  CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
  config.seed = 21;
  config.crash_points = 2;
  const CrashHarnessResult a = CrashHarness(config).Run();
  const CrashHarnessResult b = CrashHarness(config).Run();
  EXPECT_TRUE(a.ok()) << a.first_error;
  EXPECT_EQ(a.fingerprint_hash, b.fingerprint_hash);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.blocks_verified, b.blocks_verified);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
}

TEST(CrashHarnessTest, ContinuousModeDeterministicWithTimedCrashes) {
  // Continuous mode keeps a suspended plan's move chains in flight under
  // traffic; timed crash points can land inside one. Same seed must still
  // reproduce the exact same run, and every boot must verify clean.
  CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
  config.seed = 51;
  config.continuous = true;
  config.crash_points = 1;
  config.timed_crash_points = 2;
  const CrashHarnessResult a = CrashHarness(config).Run();
  const CrashHarnessResult b = CrashHarness(config).Run();
  EXPECT_TRUE(a.ok()) << a.first_error;
  EXPECT_EQ(a.mismatches, 0);
  EXPECT_GT(a.crashes, 0);
  EXPECT_EQ(a.fingerprint_hash, b.fingerprint_hash);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.blocks_verified, b.blocks_verified);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
}

TEST(CrashHarnessTest, RetriesSurviveTransientFaults) {
  // Plenty of transient faults, no crashes: the driver's bounded retry
  // must absorb every one of them without losing a request.
  CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
  config.seed = 31;
  config.crash_points = 0;
  config.transient_faults = 8;
  config.persistent_faults = 0;
  config.torn_writes = 4;
  const CrashHarnessResult r = CrashHarness(config).Run();
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_EQ(r.crashes, 0);
}

// The randomized crash-consistency sweep the issue asks for: > 200 seeded
// (fault plan, crash schedule) combinations. Every combination must verify
// with zero lost or misdirected acknowledged writes, and across the sweep
// the crashes must land in all three interesting places: inside a block
// table save, inside the arranger's copy/write-back pipeline, and in
// steady-state request processing.
TEST(CrashHarnessTest, SweepTwoHundredSeededCombinations) {
  std::int64_t table_save = 0, arrangement = 0, steady = 0;
  std::int64_t crashes = 0, acked = 0, verified = 0, faults = 0;
  std::int64_t retries = 0, aborted = 0, fallbacks = 0;
  int runs = 0;

  for (std::uint64_t seed = 1; seed <= 70; ++seed) {
    for (std::int32_t crash_points = 1; crash_points <= 3; ++crash_points) {
      CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
      config.seed = seed * 131 + static_cast<std::uint64_t>(crash_points);
      config.crash_points = crash_points;
      const CrashHarnessResult r = CrashHarness(config).Run();
      ASSERT_TRUE(r.ok()) << "seed=" << config.seed
                          << " crash_points=" << crash_points << ": "
                          << r.first_error;
      ASSERT_EQ(r.mismatches, 0);
      table_save += r.crash_in_table_save;
      arrangement += r.crash_in_arrangement;
      steady += r.crash_in_steady_state;
      crashes += r.crashes;
      acked += r.writes_acked;
      verified += r.blocks_verified;
      faults += r.injected_faults;
      retries += r.faults.retries;
      aborted += r.faults.aborted_chains;
      fallbacks += r.faults.recovery_fallbacks;
      ++runs;
    }
  }

  EXPECT_EQ(runs, 210);
  EXPECT_EQ(crashes, table_save + arrangement + steady);
  // The sweep must actually exercise every crash site and fault path.
  EXPECT_GT(table_save, 0);
  EXPECT_GT(arrangement, 0);
  EXPECT_GT(steady, 0);
  EXPECT_GT(acked, 0);
  EXPECT_GT(verified, 0);
  EXPECT_GT(faults, 0);
  EXPECT_GT(retries, 0);
  std::printf(
      "sweep: %d runs, %lld crashes (table %lld / arrange %lld / steady "
      "%lld), %lld acked, %lld verified, %lld faults, %lld retries, %lld "
      "aborted chains, %lld fallbacks\n",
      runs, static_cast<long long>(crashes),
      static_cast<long long>(table_save), static_cast<long long>(arrangement),
      static_cast<long long>(steady), static_cast<long long>(acked),
      static_cast<long long>(verified), static_cast<long long>(faults),
      static_cast<long long>(retries), static_cast<long long>(aborted),
      static_cast<long long>(fallbacks));
}

TEST(CrashHarnessTest, FullSizeRunWithCrashes) {
  CrashHarnessConfig config;  // full size, not Quick()
  config.seed = 90844;        // historical regression: arranger quiesce race
  config.crash_points = 2;
  const CrashHarnessResult r = CrashHarness(config).Run();
  EXPECT_TRUE(r.ok()) << r.first_error;
  EXPECT_EQ(r.crashes, 2);
}


TEST(CrashHarnessTest, TimedCrashPointsSweepGlobalSchedule) {
  std::int64_t crashes = 0, arrangement = 0, table_save = 0, steady = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
    config.seed = seed * 977 + 5;
    config.crash_points = 0;
    config.timed_crash_points = 2;
    config.arrange_every = 1;
    const CrashHarnessResult r = CrashHarness(config).Run();
    ASSERT_TRUE(r.ok()) << "seed=" << config.seed << ": " << r.first_error;
    crashes += r.crashes;
    arrangement += r.crash_in_arrangement;
    table_save += r.crash_in_table_save;
    steady += r.crash_in_steady_state;
  }
  EXPECT_EQ(crashes, arrangement + table_save + steady);
  EXPECT_GT(crashes, 0);
  // Timed points must land inside the pipelined arrangement windows too --
  // the site io-indexed points tend to miss on the incremental arranger.
  EXPECT_GT(arrangement, 0);
  std::printf(
      "timed sweep: %lld crashes (table %lld / arrange %lld / steady %lld)\n",
      static_cast<long long>(crashes), static_cast<long long>(table_save),
      static_cast<long long>(arrangement), static_cast<long long>(steady));
}

TEST(CrashHarnessTest, FullRebuildArrangerSurvivesTimedCrashes) {
  CrashHarnessConfig config = CrashHarnessConfig{}.Quick();
  config.seed = 4242;
  config.crash_points = 1;
  config.timed_crash_points = 2;
  config.incremental = false;  // the oracle path under the same schedule
  const CrashHarnessResult r = CrashHarness(config).Run();
  EXPECT_TRUE(r.ok()) << r.first_error;
}

}  // namespace
}  // namespace abr::fault
