# Empty compiler generated dependencies file for abr_core.
# This may be replaced when dependencies are built.
