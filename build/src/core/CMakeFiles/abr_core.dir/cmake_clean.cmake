file(REMOVE_RECURSE
  "CMakeFiles/abr_core.dir/adaptive_system.cc.o"
  "CMakeFiles/abr_core.dir/adaptive_system.cc.o.d"
  "CMakeFiles/abr_core.dir/experiment.cc.o"
  "CMakeFiles/abr_core.dir/experiment.cc.o.d"
  "CMakeFiles/abr_core.dir/metrics.cc.o"
  "CMakeFiles/abr_core.dir/metrics.cc.o.d"
  "CMakeFiles/abr_core.dir/onoff.cc.o"
  "CMakeFiles/abr_core.dir/onoff.cc.o.d"
  "libabr_core.a"
  "libabr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
