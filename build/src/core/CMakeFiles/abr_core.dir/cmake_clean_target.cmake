file(REMOVE_RECURSE
  "libabr_core.a"
)
