# Empty compiler generated dependencies file for abr_disk.
# This may be replaced when dependencies are built.
