file(REMOVE_RECURSE
  "libabr_disk.a"
)
