file(REMOVE_RECURSE
  "CMakeFiles/abr_disk.dir/disk.cc.o"
  "CMakeFiles/abr_disk.dir/disk.cc.o.d"
  "CMakeFiles/abr_disk.dir/disk_label.cc.o"
  "CMakeFiles/abr_disk.dir/disk_label.cc.o.d"
  "CMakeFiles/abr_disk.dir/seek_model.cc.o"
  "CMakeFiles/abr_disk.dir/seek_model.cc.o.d"
  "libabr_disk.a"
  "libabr_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
