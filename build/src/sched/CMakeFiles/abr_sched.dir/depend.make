# Empty dependencies file for abr_sched.
# This may be replaced when dependencies are built.
