file(REMOVE_RECURSE
  "libabr_sched.a"
)
