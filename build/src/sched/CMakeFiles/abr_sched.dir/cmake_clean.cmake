file(REMOVE_RECURSE
  "CMakeFiles/abr_sched.dir/scheduler.cc.o"
  "CMakeFiles/abr_sched.dir/scheduler.cc.o.d"
  "libabr_sched.a"
  "libabr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
