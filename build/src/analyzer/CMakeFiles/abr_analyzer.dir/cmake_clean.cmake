file(REMOVE_RECURSE
  "CMakeFiles/abr_analyzer.dir/analyzer.cc.o"
  "CMakeFiles/abr_analyzer.dir/analyzer.cc.o.d"
  "CMakeFiles/abr_analyzer.dir/decaying_counter.cc.o"
  "CMakeFiles/abr_analyzer.dir/decaying_counter.cc.o.d"
  "CMakeFiles/abr_analyzer.dir/exact_counter.cc.o"
  "CMakeFiles/abr_analyzer.dir/exact_counter.cc.o.d"
  "CMakeFiles/abr_analyzer.dir/space_saving_counter.cc.o"
  "CMakeFiles/abr_analyzer.dir/space_saving_counter.cc.o.d"
  "libabr_analyzer.a"
  "libabr_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
