# Empty compiler generated dependencies file for abr_analyzer.
# This may be replaced when dependencies are built.
