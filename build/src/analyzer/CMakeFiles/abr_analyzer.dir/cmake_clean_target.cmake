file(REMOVE_RECURSE
  "libabr_analyzer.a"
)
