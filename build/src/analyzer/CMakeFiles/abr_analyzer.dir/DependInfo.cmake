
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cc" "src/analyzer/CMakeFiles/abr_analyzer.dir/analyzer.cc.o" "gcc" "src/analyzer/CMakeFiles/abr_analyzer.dir/analyzer.cc.o.d"
  "/root/repo/src/analyzer/decaying_counter.cc" "src/analyzer/CMakeFiles/abr_analyzer.dir/decaying_counter.cc.o" "gcc" "src/analyzer/CMakeFiles/abr_analyzer.dir/decaying_counter.cc.o.d"
  "/root/repo/src/analyzer/exact_counter.cc" "src/analyzer/CMakeFiles/abr_analyzer.dir/exact_counter.cc.o" "gcc" "src/analyzer/CMakeFiles/abr_analyzer.dir/exact_counter.cc.o.d"
  "/root/repo/src/analyzer/space_saving_counter.cc" "src/analyzer/CMakeFiles/abr_analyzer.dir/space_saving_counter.cc.o" "gcc" "src/analyzer/CMakeFiles/abr_analyzer.dir/space_saving_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/abr_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/abr_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/abr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
