file(REMOVE_RECURSE
  "libabr_util.a"
)
