# Empty dependencies file for abr_util.
# This may be replaced when dependencies are built.
