file(REMOVE_RECURSE
  "CMakeFiles/abr_util.dir/rng.cc.o"
  "CMakeFiles/abr_util.dir/rng.cc.o.d"
  "CMakeFiles/abr_util.dir/status.cc.o"
  "CMakeFiles/abr_util.dir/status.cc.o.d"
  "CMakeFiles/abr_util.dir/table.cc.o"
  "CMakeFiles/abr_util.dir/table.cc.o.d"
  "CMakeFiles/abr_util.dir/zipf.cc.o"
  "CMakeFiles/abr_util.dir/zipf.cc.o.d"
  "libabr_util.a"
  "libabr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
