# Empty dependencies file for abr_stats.
# This may be replaced when dependencies are built.
