file(REMOVE_RECURSE
  "CMakeFiles/abr_stats.dir/histogram.cc.o"
  "CMakeFiles/abr_stats.dir/histogram.cc.o.d"
  "CMakeFiles/abr_stats.dir/summary.cc.o"
  "CMakeFiles/abr_stats.dir/summary.cc.o.d"
  "libabr_stats.a"
  "libabr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
