file(REMOVE_RECURSE
  "libabr_stats.a"
)
