file(REMOVE_RECURSE
  "CMakeFiles/abr_fs.dir/buffer_cache.cc.o"
  "CMakeFiles/abr_fs.dir/buffer_cache.cc.o.d"
  "CMakeFiles/abr_fs.dir/ffs.cc.o"
  "CMakeFiles/abr_fs.dir/ffs.cc.o.d"
  "CMakeFiles/abr_fs.dir/file_server.cc.o"
  "CMakeFiles/abr_fs.dir/file_server.cc.o.d"
  "libabr_fs.a"
  "libabr_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
