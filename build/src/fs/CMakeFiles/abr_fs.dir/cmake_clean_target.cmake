file(REMOVE_RECURSE
  "libabr_fs.a"
)
