# Empty dependencies file for abr_fs.
# This may be replaced when dependencies are built.
