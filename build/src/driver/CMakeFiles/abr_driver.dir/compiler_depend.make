# Empty compiler generated dependencies file for abr_driver.
# This may be replaced when dependencies are built.
