file(REMOVE_RECURSE
  "libabr_driver.a"
)
