
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/adaptive_driver.cc" "src/driver/CMakeFiles/abr_driver.dir/adaptive_driver.cc.o" "gcc" "src/driver/CMakeFiles/abr_driver.dir/adaptive_driver.cc.o.d"
  "/root/repo/src/driver/block_table.cc" "src/driver/CMakeFiles/abr_driver.dir/block_table.cc.o" "gcc" "src/driver/CMakeFiles/abr_driver.dir/block_table.cc.o.d"
  "/root/repo/src/driver/perf_monitor.cc" "src/driver/CMakeFiles/abr_driver.dir/perf_monitor.cc.o" "gcc" "src/driver/CMakeFiles/abr_driver.dir/perf_monitor.cc.o.d"
  "/root/repo/src/driver/request_monitor.cc" "src/driver/CMakeFiles/abr_driver.dir/request_monitor.cc.o" "gcc" "src/driver/CMakeFiles/abr_driver.dir/request_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/abr_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/abr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
