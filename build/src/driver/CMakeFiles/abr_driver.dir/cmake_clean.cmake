file(REMOVE_RECURSE
  "CMakeFiles/abr_driver.dir/adaptive_driver.cc.o"
  "CMakeFiles/abr_driver.dir/adaptive_driver.cc.o.d"
  "CMakeFiles/abr_driver.dir/block_table.cc.o"
  "CMakeFiles/abr_driver.dir/block_table.cc.o.d"
  "CMakeFiles/abr_driver.dir/perf_monitor.cc.o"
  "CMakeFiles/abr_driver.dir/perf_monitor.cc.o.d"
  "CMakeFiles/abr_driver.dir/request_monitor.cc.o"
  "CMakeFiles/abr_driver.dir/request_monitor.cc.o.d"
  "libabr_driver.a"
  "libabr_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
