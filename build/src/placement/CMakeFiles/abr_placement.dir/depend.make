# Empty dependencies file for abr_placement.
# This may be replaced when dependencies are built.
