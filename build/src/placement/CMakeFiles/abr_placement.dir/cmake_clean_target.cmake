file(REMOVE_RECURSE
  "libabr_placement.a"
)
