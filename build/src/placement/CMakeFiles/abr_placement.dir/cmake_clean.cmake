file(REMOVE_RECURSE
  "CMakeFiles/abr_placement.dir/arranger.cc.o"
  "CMakeFiles/abr_placement.dir/arranger.cc.o.d"
  "CMakeFiles/abr_placement.dir/policy.cc.o"
  "CMakeFiles/abr_placement.dir/policy.cc.o.d"
  "CMakeFiles/abr_placement.dir/reserved_region.cc.o"
  "CMakeFiles/abr_placement.dir/reserved_region.cc.o.d"
  "libabr_placement.a"
  "libabr_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
