file(REMOVE_RECURSE
  "CMakeFiles/abr_baselines.dir/cylinder_shuffle.cc.o"
  "CMakeFiles/abr_baselines.dir/cylinder_shuffle.cc.o.d"
  "CMakeFiles/abr_baselines.dir/file_temperature.cc.o"
  "CMakeFiles/abr_baselines.dir/file_temperature.cc.o.d"
  "libabr_baselines.a"
  "libabr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
