# Empty compiler generated dependencies file for abr_baselines.
# This may be replaced when dependencies are built.
