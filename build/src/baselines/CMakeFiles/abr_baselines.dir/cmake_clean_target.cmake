file(REMOVE_RECURSE
  "libabr_baselines.a"
)
