file(REMOVE_RECURSE
  "CMakeFiles/abr_workload.dir/arrival.cc.o"
  "CMakeFiles/abr_workload.dir/arrival.cc.o.d"
  "CMakeFiles/abr_workload.dir/backup.cc.o"
  "CMakeFiles/abr_workload.dir/backup.cc.o.d"
  "CMakeFiles/abr_workload.dir/file_server_workload.cc.o"
  "CMakeFiles/abr_workload.dir/file_server_workload.cc.o.d"
  "CMakeFiles/abr_workload.dir/replay.cc.o"
  "CMakeFiles/abr_workload.dir/replay.cc.o.d"
  "CMakeFiles/abr_workload.dir/synthetic.cc.o"
  "CMakeFiles/abr_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/abr_workload.dir/trace.cc.o"
  "CMakeFiles/abr_workload.dir/trace.cc.o.d"
  "CMakeFiles/abr_workload.dir/trace_stats.cc.o"
  "CMakeFiles/abr_workload.dir/trace_stats.cc.o.d"
  "libabr_workload.a"
  "libabr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
