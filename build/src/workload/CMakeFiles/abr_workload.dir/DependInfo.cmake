
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cc" "src/workload/CMakeFiles/abr_workload.dir/arrival.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/arrival.cc.o.d"
  "/root/repo/src/workload/backup.cc" "src/workload/CMakeFiles/abr_workload.dir/backup.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/backup.cc.o.d"
  "/root/repo/src/workload/file_server_workload.cc" "src/workload/CMakeFiles/abr_workload.dir/file_server_workload.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/file_server_workload.cc.o.d"
  "/root/repo/src/workload/replay.cc" "src/workload/CMakeFiles/abr_workload.dir/replay.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/replay.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/abr_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/abr_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_stats.cc" "src/workload/CMakeFiles/abr_workload.dir/trace_stats.cc.o" "gcc" "src/workload/CMakeFiles/abr_workload.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/CMakeFiles/abr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/abr_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/abr_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/abr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
