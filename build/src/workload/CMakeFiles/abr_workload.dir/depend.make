# Empty dependencies file for abr_workload.
# This may be replaced when dependencies are built.
