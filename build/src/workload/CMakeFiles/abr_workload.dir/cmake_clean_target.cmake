file(REMOVE_RECURSE
  "libabr_workload.a"
)
