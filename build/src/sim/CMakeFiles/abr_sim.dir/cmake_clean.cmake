file(REMOVE_RECURSE
  "CMakeFiles/abr_sim.dir/disk_system.cc.o"
  "CMakeFiles/abr_sim.dir/disk_system.cc.o.d"
  "libabr_sim.a"
  "libabr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
