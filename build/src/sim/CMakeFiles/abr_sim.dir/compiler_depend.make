# Empty compiler generated dependencies file for abr_sim.
# This may be replaced when dependencies are built.
