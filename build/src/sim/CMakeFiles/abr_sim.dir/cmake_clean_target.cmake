file(REMOVE_RECURSE
  "libabr_sim.a"
)
