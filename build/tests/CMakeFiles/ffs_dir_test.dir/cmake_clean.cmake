file(REMOVE_RECURSE
  "CMakeFiles/ffs_dir_test.dir/fs/ffs_dir_test.cc.o"
  "CMakeFiles/ffs_dir_test.dir/fs/ffs_dir_test.cc.o.d"
  "ffs_dir_test"
  "ffs_dir_test.pdb"
  "ffs_dir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_dir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
