# Empty dependencies file for ffs_dir_test.
# This may be replaced when dependencies are built.
