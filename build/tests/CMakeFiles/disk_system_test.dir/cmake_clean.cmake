file(REMOVE_RECURSE
  "CMakeFiles/disk_system_test.dir/sim/disk_system_test.cc.o"
  "CMakeFiles/disk_system_test.dir/sim/disk_system_test.cc.o.d"
  "disk_system_test"
  "disk_system_test.pdb"
  "disk_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
