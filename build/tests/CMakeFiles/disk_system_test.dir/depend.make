# Empty dependencies file for disk_system_test.
# This may be replaced when dependencies are built.
