file(REMOVE_RECURSE
  "CMakeFiles/cylinder_shuffle_test.dir/baselines/cylinder_shuffle_test.cc.o"
  "CMakeFiles/cylinder_shuffle_test.dir/baselines/cylinder_shuffle_test.cc.o.d"
  "cylinder_shuffle_test"
  "cylinder_shuffle_test.pdb"
  "cylinder_shuffle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cylinder_shuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
