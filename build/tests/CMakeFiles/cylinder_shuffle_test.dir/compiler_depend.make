# Empty compiler generated dependencies file for cylinder_shuffle_test.
# This may be replaced when dependencies are built.
