# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cylinder_shuffle_test.
