file(REMOVE_RECURSE
  "CMakeFiles/name_cache_test.dir/fs/name_cache_test.cc.o"
  "CMakeFiles/name_cache_test.dir/fs/name_cache_test.cc.o.d"
  "name_cache_test"
  "name_cache_test.pdb"
  "name_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
