# Empty compiler generated dependencies file for name_cache_test.
# This may be replaced when dependencies are built.
