file(REMOVE_RECURSE
  "CMakeFiles/multi_fs_test.dir/core/multi_fs_test.cc.o"
  "CMakeFiles/multi_fs_test.dir/core/multi_fs_test.cc.o.d"
  "multi_fs_test"
  "multi_fs_test.pdb"
  "multi_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
