# Empty compiler generated dependencies file for multi_fs_test.
# This may be replaced when dependencies are built.
