file(REMOVE_RECURSE
  "CMakeFiles/reserved_region_test.dir/placement/reserved_region_test.cc.o"
  "CMakeFiles/reserved_region_test.dir/placement/reserved_region_test.cc.o.d"
  "reserved_region_test"
  "reserved_region_test.pdb"
  "reserved_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reserved_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
