# Empty compiler generated dependencies file for reserved_region_test.
# This may be replaced when dependencies are built.
