# Empty dependencies file for file_server_workload_test.
# This may be replaced when dependencies are built.
