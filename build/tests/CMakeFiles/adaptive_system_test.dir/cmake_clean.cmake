file(REMOVE_RECURSE
  "CMakeFiles/adaptive_system_test.dir/core/adaptive_system_test.cc.o"
  "CMakeFiles/adaptive_system_test.dir/core/adaptive_system_test.cc.o.d"
  "adaptive_system_test"
  "adaptive_system_test.pdb"
  "adaptive_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
