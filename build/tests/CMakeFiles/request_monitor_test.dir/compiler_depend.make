# Empty compiler generated dependencies file for request_monitor_test.
# This may be replaced when dependencies are built.
