file(REMOVE_RECURSE
  "CMakeFiles/request_monitor_test.dir/driver/request_monitor_test.cc.o"
  "CMakeFiles/request_monitor_test.dir/driver/request_monitor_test.cc.o.d"
  "request_monitor_test"
  "request_monitor_test.pdb"
  "request_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
