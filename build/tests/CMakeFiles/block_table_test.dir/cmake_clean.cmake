file(REMOVE_RECURSE
  "CMakeFiles/block_table_test.dir/driver/block_table_test.cc.o"
  "CMakeFiles/block_table_test.dir/driver/block_table_test.cc.o.d"
  "block_table_test"
  "block_table_test.pdb"
  "block_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
