# Empty compiler generated dependencies file for block_table_test.
# This may be replaced when dependencies are built.
