# Empty dependencies file for arranger_test.
# This may be replaced when dependencies are built.
