file(REMOVE_RECURSE
  "CMakeFiles/arranger_test.dir/placement/arranger_test.cc.o"
  "CMakeFiles/arranger_test.dir/placement/arranger_test.cc.o.d"
  "arranger_test"
  "arranger_test.pdb"
  "arranger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arranger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
