# Empty compiler generated dependencies file for seek_model_test.
# This may be replaced when dependencies are built.
