file(REMOVE_RECURSE
  "CMakeFiles/seek_model_test.dir/disk/seek_model_test.cc.o"
  "CMakeFiles/seek_model_test.dir/disk/seek_model_test.cc.o.d"
  "seek_model_test"
  "seek_model_test.pdb"
  "seek_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seek_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
