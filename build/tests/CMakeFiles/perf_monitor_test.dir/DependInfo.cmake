
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/driver/perf_monitor_test.cc" "tests/CMakeFiles/perf_monitor_test.dir/driver/perf_monitor_test.cc.o" "gcc" "tests/CMakeFiles/perf_monitor_test.dir/driver/perf_monitor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/abr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/abr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/abr_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/abr_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/abr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/abr_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/abr_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/abr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
