file(REMOVE_RECURSE
  "CMakeFiles/perf_monitor_test.dir/driver/perf_monitor_test.cc.o"
  "CMakeFiles/perf_monitor_test.dir/driver/perf_monitor_test.cc.o.d"
  "perf_monitor_test"
  "perf_monitor_test.pdb"
  "perf_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
