file(REMOVE_RECURSE
  "CMakeFiles/adaptive_driver_test.dir/driver/adaptive_driver_test.cc.o"
  "CMakeFiles/adaptive_driver_test.dir/driver/adaptive_driver_test.cc.o.d"
  "adaptive_driver_test"
  "adaptive_driver_test.pdb"
  "adaptive_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
