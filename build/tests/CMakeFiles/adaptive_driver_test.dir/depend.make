# Empty dependencies file for adaptive_driver_test.
# This may be replaced when dependencies are built.
