# Empty compiler generated dependencies file for file_temperature_test.
# This may be replaced when dependencies are built.
