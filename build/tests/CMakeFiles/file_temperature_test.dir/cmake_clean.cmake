file(REMOVE_RECURSE
  "CMakeFiles/file_temperature_test.dir/baselines/file_temperature_test.cc.o"
  "CMakeFiles/file_temperature_test.dir/baselines/file_temperature_test.cc.o.d"
  "file_temperature_test"
  "file_temperature_test.pdb"
  "file_temperature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_temperature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
