# Empty dependencies file for file_server_open_test.
# This may be replaced when dependencies are built.
