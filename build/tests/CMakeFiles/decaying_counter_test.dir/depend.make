# Empty dependencies file for decaying_counter_test.
# This may be replaced when dependencies are built.
