file(REMOVE_RECURSE
  "CMakeFiles/decaying_counter_test.dir/analyzer/decaying_counter_test.cc.o"
  "CMakeFiles/decaying_counter_test.dir/analyzer/decaying_counter_test.cc.o.d"
  "decaying_counter_test"
  "decaying_counter_test.pdb"
  "decaying_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decaying_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
