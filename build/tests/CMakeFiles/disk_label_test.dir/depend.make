# Empty dependencies file for disk_label_test.
# This may be replaced when dependencies are built.
