file(REMOVE_RECURSE
  "CMakeFiles/disk_label_test.dir/disk/disk_label_test.cc.o"
  "CMakeFiles/disk_label_test.dir/disk/disk_label_test.cc.o.d"
  "disk_label_test"
  "disk_label_test.pdb"
  "disk_label_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
