# Empty dependencies file for file_server_test.
# This may be replaced when dependencies are built.
