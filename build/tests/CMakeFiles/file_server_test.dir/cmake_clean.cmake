file(REMOVE_RECURSE
  "CMakeFiles/file_server_test.dir/fs/file_server_test.cc.o"
  "CMakeFiles/file_server_test.dir/fs/file_server_test.cc.o.d"
  "file_server_test"
  "file_server_test.pdb"
  "file_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
