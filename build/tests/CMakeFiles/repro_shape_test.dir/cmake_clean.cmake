file(REMOVE_RECURSE
  "CMakeFiles/repro_shape_test.dir/core/repro_shape_test.cc.o"
  "CMakeFiles/repro_shape_test.dir/core/repro_shape_test.cc.o.d"
  "repro_shape_test"
  "repro_shape_test.pdb"
  "repro_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
