file(REMOVE_RECURSE
  "CMakeFiles/abrsim.dir/abrsim.cc.o"
  "CMakeFiles/abrsim.dir/abrsim.cc.o.d"
  "abrsim"
  "abrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
