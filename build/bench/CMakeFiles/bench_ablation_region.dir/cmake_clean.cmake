file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_region.dir/bench_ablation_region.cc.o"
  "CMakeFiles/bench_ablation_region.dir/bench_ablation_region.cc.o.d"
  "bench_ablation_region"
  "bench_ablation_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
