# Empty compiler generated dependencies file for bench_ablation_region.
# This may be replaced when dependencies are built.
