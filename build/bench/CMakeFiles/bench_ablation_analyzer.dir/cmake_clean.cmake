file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_analyzer.dir/bench_ablation_analyzer.cc.o"
  "CMakeFiles/bench_ablation_analyzer.dir/bench_ablation_analyzer.cc.o.d"
  "bench_ablation_analyzer"
  "bench_ablation_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
