file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_staggered.dir/bench_ext_staggered.cc.o"
  "CMakeFiles/bench_ext_staggered.dir/bench_ext_staggered.cc.o.d"
  "bench_ext_staggered"
  "bench_ext_staggered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_staggered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
