# Empty dependencies file for bench_ext_staggered.
# This may be replaced when dependencies are built.
