# Empty compiler generated dependencies file for fileserver_sim.
# This may be replaced when dependencies are built.
