file(REMOVE_RECURSE
  "CMakeFiles/fileserver_sim.dir/fileserver_sim.cpp.o"
  "CMakeFiles/fileserver_sim.dir/fileserver_sim.cpp.o.d"
  "fileserver_sim"
  "fileserver_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fileserver_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
