// Quickstart: set up an adaptive block-rearrangement system on a simulated
// disk, run skewed traffic through it, adapt, and watch seek times drop.
//
//   $ ./quickstart
//
// The flow mirrors the paper's deployment:
//   1. Label the disk with hidden reserved cylinders (the virtual disk the
//      file system sees is smaller than the real one).
//   2. Attach the adaptive driver and submit logical block requests.
//   3. Periodically drain the driver's request monitor into the reference
//      stream analyzer.
//   4. Once per adaptation period, let the block arranger copy the hottest
//      blocks into the reserved area (organ-pipe layout).

#include <cstdio>

#include "core/adaptive_system.h"
#include "core/metrics.h"
#include "disk/drive_spec.h"
#include "workload/replay.h"
#include "workload/synthetic.h"

using namespace abr;

namespace {

/// One period of synthetic skewed traffic; returns the day's metrics.
core::DayMetrics RunPeriod(core::AdaptiveSystem& system,
                           const disk::DriveSpec& drive,
                           std::uint64_t seed) {
  workload::SyntheticConfig config;
  config.population = 2000;   // distinct blocks referenced
  config.theta = 1.1;         // highly skewed, like real file servers
  config.write_fraction = 0.3;
  config.arrivals.mean_burst_gap = 300 * kMillisecond;
  config.arrivals.mean_burst_size = 5.0;

  driver::AdaptiveDriver& driver = system.driver();
  const std::int64_t virtual_blocks =
      driver.label().virtual_geometry().total_sectors() /
      driver.block_sectors();

  workload::SyntheticBlockWorkload workload(0, virtual_blocks, config, seed);
  workload::Trace trace;
  workload.Generate(driver.now(), driver.now() + 10 * kMinute, trace);

  driver.IoctlReadStats(/*clear=*/true);
  Status s = workload::Replay(
      driver, trace, [&system](Micros t) { system.PeriodicTick(t); },
      /*period=*/30 * kSecond);
  if (!s.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  driver.Drain();
  return core::DayMetrics::From(driver.IoctlReadStats(/*clear=*/true),
                                drive.seek_model);
}

}  // namespace

int main() {
  // 1. A Fujitsu M2266 (Table 1) with 80 cylinders hidden in the middle.
  const disk::DriveSpec drive = disk::DriveSpec::FujitsuM2266();
  disk::Disk disk(drive);
  StatusOr<disk::DiskLabel> label =
      disk::DiskLabel::Rearranged(drive.geometry, /*reserved_cylinders=*/80);
  if (!label.ok() || !label->PartitionEvenly(1).ok()) {
    std::fprintf(stderr, "label setup failed\n");
    return 1;
  }

  // 2. The adaptive system: driver + analyzer + arranger.
  core::AdaptiveSystemConfig config;
  config.rearrange_blocks = 2000;
  config.driver.block_table_capacity = 2000;
  config.analyzer_entries = 8192;  // bounded-memory hot-block estimation
  config.policy = placement::PolicyKind::kOrganPipe;
  driver::InMemoryTableStore store;
  core::AdaptiveSystem system(&disk, std::move(*label), config, &store);
  if (Status s = system.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. A monitoring-only period: the analyzer learns the hot blocks.
  std::printf("Running baseline period (no rearrangement)...\n");
  const core::DayMetrics before = RunPeriod(system, drive, /*seed=*/1);

  // 4. Adapt: clean the reserved area and copy the hot blocks in.
  StatusOr<placement::ArrangeResult> result = system.Rearrange();
  if (!result.ok()) {
    std::fprintf(stderr, "rearrange failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Rearranged %d blocks (%lld driver I/Os, %.1f s of disk time).\n",
      result->copied, static_cast<long long>(result->internal_ios),
      MicrosToMillis(result->io_time) / 1000.0);

  // 5. The same traffic again, now with hot blocks clustered.
  std::printf("Running adapted period...\n");
  const core::DayMetrics after = RunPeriod(system, drive, /*seed=*/1);

  std::printf("\n%-28s %12s %12s\n", "", "before", "after");
  auto row = [](const char* name, double b, double a) {
    std::printf("%-28s %12.2f %12.2f\n", name, b, a);
  };
  row("mean seek time (ms)", before.all.mean_seek_ms, after.all.mean_seek_ms);
  row("mean seek distance (cyl)", before.all.mean_seek_dist,
      after.all.mean_seek_dist);
  row("zero-length seeks (%)", before.all.zero_seek_pct,
      after.all.zero_seek_pct);
  row("mean service time (ms)", before.all.mean_service_ms,
      after.all.mean_service_ms);
  row("mean waiting time (ms)", before.all.mean_wait_ms,
      after.all.mean_wait_ms);
  std::printf("\nSeek time reduced by %.0f%%.\n",
              100.0 * (before.all.mean_seek_ms - after.all.mean_seek_ms) /
                  before.all.mean_seek_ms);
  return 0;
}
