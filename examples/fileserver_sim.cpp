// fileserver_sim: a multi-day departmental file server, end to end.
//
//   $ ./fileserver_sim [days_per_side] [toshiba|fujitsu] [system|users]
//
// Recreates the paper's measurement scenario: an FFS file system over the
// adaptive driver, serving a synthetic multi-user population with the
// measured workloads' skew, burstiness and drift. Runs alternating
// off/on days and prints a per-day log plus the summary rows of the
// paper's Tables 2/5.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "core/onoff.h"

using namespace abr;

int main(int argc, char** argv) {
  std::int32_t days_per_side = 3;
  std::string disk = "toshiba";
  std::string workload = "system";
  if (argc > 1) days_per_side = std::atoi(argv[1]);
  if (argc > 2) disk = argv[2];
  if (argc > 3) workload = argv[3];
  if (days_per_side <= 0 || (disk != "toshiba" && disk != "fujitsu") ||
      (workload != "system" && workload != "users")) {
    std::fprintf(stderr,
                 "usage: %s [days_per_side] [toshiba|fujitsu] "
                 "[system|users]\n",
                 argv[0]);
    return 2;
  }

  core::ExperimentConfig config;
  if (disk == "toshiba") {
    config = workload == "system" ? core::ExperimentConfig::ToshibaSystem()
                                  : core::ExperimentConfig::ToshibaUsers();
  } else {
    config = workload == "system" ? core::ExperimentConfig::FujitsuSystem()
                                  : core::ExperimentConfig::FujitsuUsers();
  }

  std::printf("Disk: %s   File system: %s   Days: %d off + %d on\n",
              config.drive.name.c_str(), workload.c_str(), days_per_side,
              days_per_side);
  std::printf("Reserved: %d cylinders, rearranging up to %d blocks, %s "
              "placement\n\n",
              config.reserved_cylinders, config.rearrange_blocks,
              placement::PolicyKindName(config.system.policy));

  core::Experiment exp(std::move(config));
  if (Status s = exp.Setup(); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Warm-up day (monitored, unmeasured).
  if (!exp.RunMeasuredDay().ok()) return 1;
  std::printf("%-5s %-4s %10s %10s %10s %10s %9s\n", "day", "mode",
              "seek ms", "svc ms", "wait ms", "zero-seek%", "requests");

  core::SummaryRow off_row, on_row;
  for (std::int32_t i = 0; i < 2 * days_per_side; ++i) {
    const bool on = (i % 2) == 1;
    Status s = on ? exp.RearrangeForNextDay() : exp.CleanForNextDay();
    if (!s.ok()) {
      std::fprintf(stderr, "day prep failed: %s\n", s.ToString().c_str());
      return 1;
    }
    exp.AdvanceWorkloadDay();
    StatusOr<core::DayMetrics> day = exp.RunMeasuredDay();
    if (!day.ok()) {
      std::fprintf(stderr, "day failed: %s\n",
                   day.status().ToString().c_str());
      return 1;
    }
    (on ? on_row : off_row).Add(day->all);
    std::printf("%-5d %-4s %10.2f %10.2f %10.2f %10.0f %9lld\n", i + 1,
                on ? "ON" : "OFF", day->all.mean_seek_ms,
                day->all.mean_service_ms, day->all.mean_wait_ms,
                day->all.zero_seek_pct,
                static_cast<long long>(day->all.count));
  }

  auto summary = [](const char* label, const core::SummaryRow& row) {
    std::printf("%-4s seek %.2f/%.2f/%.2f ms   service %.2f/%.2f/%.2f ms   "
                "wait %.2f/%.2f/%.2f ms (min/avg/max)\n",
                label, row.seek_ms.min(), row.seek_ms.avg(),
                row.seek_ms.max(), row.service_ms.min(),
                row.service_ms.avg(), row.service_ms.max(),
                row.wait_ms.min(), row.wait_ms.avg(), row.wait_ms.max());
  };
  std::printf("\nSummary of daily means:\n");
  summary("OFF", off_row);
  summary("ON", on_row);
  std::printf("\nSeek-time reduction (avg of daily means): %.0f%%\n",
              100.0 * (off_row.seek_ms.avg() - on_row.seek_ms.avg()) /
                  off_row.seek_ms.avg());
  return 0;
}
