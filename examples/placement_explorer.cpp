// placement_explorer: visualizes how the three placement policies lay the
// same hot blocks out in the reserved region — the scenario of the paper's
// Figure 3 (a reserved area of three cylinders with four blocks each, file
// system interleaving factor of one block).
//
//   $ ./placement_explorer

#include <cstdio>
#include <map>
#include <string>

#include "disk/geometry.h"
#include "placement/policy.h"

using namespace abr;
using placement::PlacementPlan;
using placement::ReservedRegion;

namespace {

/// The Figure 3 reserved area: 3 cylinders x 4 block slots.
ReservedRegion FigureRegion() {
  disk::Geometry g;
  g.cylinders = 12;
  g.tracks_per_cylinder = 1;
  g.sectors_per_track = 8;
  g.rpm = 3600;
  g.bytes_per_sector = 512;
  // Data slots start on cylinder 4; 12 slots of 2 sectors.
  return ReservedRegion(g, /*data_first_sector=*/32, /*slot_count=*/12,
                        /*block_sectors=*/2);
}

/// Blocks to rearrange with their estimated access frequencies. Blocks
/// 10/12/14 and 30/32 form interleaved file chains (gap of one block,
/// frequencies within 50% of their predecessors).
std::vector<analyzer::HotBlock> FigureBlocks() {
  return {
      {{0, 10}, 100},  // file A, block 0
      {{0, 12}, 95},   // file A, block 1 (successor of 10)
      {{0, 50}, 90},
      {{0, 30}, 55},   // file B, block 0
      {{0, 70}, 50},
      {{0, 32}, 40},   // file B, block 1 (successor of 30)
      {{0, 14}, 35},   // file A, block 2 (successor of 12)... too far
      {{0, 90}, 20},
      {{0, 24}, 12},
      {{0, 44}, 10},
      {{0, 64}, 6},
      {{0, 84}, 3},
  };
}

void Draw(const char* name, const PlacementPlan& plan,
          const ReservedRegion& region,
          const std::map<BlockNo, std::int64_t>& freq) {
  std::printf("%s\n", name);
  std::map<std::int32_t, BlockNo> by_slot;
  for (const placement::SlotAssignment& a : plan) {
    by_slot[a.slot] = a.id.block;
  }
  for (Cylinder c : region.cylinders()) {
    std::printf("  cyl %2d: ", c);
    for (std::int32_t slot : region.SlotsOfCylinder(c)) {
      auto it = by_slot.find(slot);
      if (it == by_slot.end()) {
        std::printf("[   --   ] ");
      } else {
        std::printf("[b%02lld f=%-3lld] ",
                    static_cast<long long>(it->second),
                    static_cast<long long>(freq.at(it->second)));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const ReservedRegion region = FigureRegion();
  const std::vector<analyzer::HotBlock> blocks = FigureBlocks();
  std::map<BlockNo, std::int64_t> freq;
  for (const analyzer::HotBlock& hb : blocks) freq[hb.id.block] = hb.count;

  std::printf(
      "Reserved area: %zu cylinders x 4 blocks; interleave factor 1.\n"
      "Hot blocks (rank order): ",
      region.cylinders().size());
  for (const analyzer::HotBlock& hb : blocks) {
    std::printf("b%lld(%lld) ", static_cast<long long>(hb.id.block),
                static_cast<long long>(hb.count));
  }
  std::printf("\n\nOrgan-pipe cylinder fill order: ");
  for (Cylinder c : region.OrganPipeCylinderOrder()) std::printf("%d ", c);
  std::printf("(center first, alternating outward)\n\n");

  for (const auto kind :
       {placement::PolicyKind::kOrganPipe, placement::PolicyKind::kInterleaved,
        placement::PolicyKind::kSerial}) {
    auto policy = placement::MakePolicy(kind, /*interleave_factor=*/1);
    Draw(policy->name(), policy->Place(blocks, region), region, freq);
  }

  std::printf(
      "Notes:\n"
      " - Organ-pipe: hottest blocks pack the center cylinder; frequency\n"
      "   falls off toward the edges of the region.\n"
      " - Interleaved: file chains (b10->b12->b14, b30->b32) keep their\n"
      "   one-block rotational gap inside a cylinder where possible.\n"
      " - Serial: the same set of blocks in block-number order; reference\n"
      "   counts choose the set but not the layout.\n");
  return 0;
}
