// trace_replay: generate, save, load and replay logical-request traces
// against the adaptive driver — the workflow for experimenting with your
// own traces.
//
//   $ ./trace_replay                # demo with a generated trace
//   $ ./trace_replay my.trace      # replay an existing trace file
//
// Trace format (text): one "time_us device block R|W" line per request.

#include <cstdio>
#include <string>

#include "core/adaptive_system.h"
#include "core/metrics.h"
#include "disk/drive_spec.h"
#include "workload/replay.h"
#include "workload/synthetic.h"

using namespace abr;

namespace {

StatusOr<workload::Trace> DemoTrace(const std::string& path) {
  workload::SyntheticConfig config;
  config.population = 1500;
  config.theta = 1.0;
  config.write_fraction = 0.25;
  workload::SyntheticBlockWorkload generator(0, /*partition_blocks=*/15000,
                                             config, /*seed=*/2024);
  workload::Trace trace;
  generator.Generate(0, 5 * kMinute, trace);
  ABR_RETURN_IF_ERROR(trace.SaveTo(path));
  std::printf("Generated %zu requests -> %s\n", trace.size(), path.c_str());
  return workload::Trace::LoadFrom(path);  // round-trip on purpose
}

}  // namespace

int main(int argc, char** argv) {
  StatusOr<workload::Trace> trace =
      argc > 1 ? workload::Trace::LoadFrom(argv[1])
               : DemoTrace("/tmp/abr_demo.trace");
  if (!trace.ok()) {
    std::fprintf(stderr, "trace load failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  std::printf("Replaying %zu requests...\n", trace->size());

  const disk::DriveSpec drive = disk::DriveSpec::ToshibaMK156F();
  disk::Disk disk(drive);
  auto label = disk::DiskLabel::Rearranged(drive.geometry, 48);
  if (!label.ok() || !label->PartitionEvenly(1).ok()) return 1;

  core::AdaptiveSystemConfig config;
  config.rearrange_blocks = 1018;
  config.driver.block_table_capacity = 1018;
  driver::InMemoryTableStore store;
  core::AdaptiveSystem system(&disk, std::move(*label), config, &store);
  if (!system.Start().ok()) return 1;

  auto replay_once = [&](const char* label_text) -> int {
    system.driver().IoctlReadStats(true);
    // Re-time the trace records relative to the current clock.
    workload::Trace shifted;
    const Micros base = system.driver().now();
    for (workload::TraceRecord rec : trace->records()) {
      rec.time += base;
      shifted.Append(rec);
    }
    Status s = workload::Replay(
        system.driver(), shifted,
        [&system](Micros t) { system.PeriodicTick(t); });
    if (!s.ok()) {
      std::fprintf(stderr, "replay failed: %s\n", s.ToString().c_str());
      return 1;
    }
    system.driver().Drain();
    const core::DayMetrics m = core::DayMetrics::From(
        system.driver().IoctlReadStats(true), drive.seek_model);
    std::printf("%-22s seek %6.2f ms   service %6.2f ms   wait %7.2f ms   "
                "zero-seeks %3.0f%%\n",
                label_text, m.all.mean_seek_ms, m.all.mean_service_ms,
                m.all.mean_wait_ms, m.all.zero_seek_pct);
    return 0;
  };

  if (replay_once("before rearrangement:")) return 1;
  StatusOr<placement::ArrangeResult> result = system.Rearrange();
  if (!result.ok()) {
    std::fprintf(stderr, "rearrange failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Rearranged %d hot blocks.\n", result->copied);
  if (replay_once("after rearrangement:")) return 1;
  return 0;
}
